"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.circuit import GateType
from repro.io import (
    BenchFormatError,
    dumps_bench,
    load_bench,
    loads_bench,
    save_bench,
)
from repro.circuits import c17
from tests.conftest import all_assignments

C17_TEXT = """
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParse:
    def test_c17_matches_builtin(self):
        parsed = loads_bench(C17_TEXT, "c17")
        builtin = c17()
        for assignment in all_assignments(builtin):
            assert (parsed.evaluate_outputs(assignment)
                    == builtin.evaluate_outputs(assignment))

    def test_structure(self):
        c = loads_bench(C17_TEXT)
        assert len(c.inputs) == 5
        assert c.outputs == ["22", "23"]
        assert c.num_gates == 6
        assert c.node("10").gate_type is GateType.NAND

    def test_forward_references_resolved(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        y = NOT(mid)
        mid = BUF(a)
        """
        c = loads_bench(text)
        assert c.evaluate_outputs({"a": 1}) == {"y": 0}

    def test_comments_and_blank_lines(self):
        text = "# hi\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n"
        assert loads_bench(text).num_gates == 1

    def test_all_gate_types(self):
        text = """
        INPUT(a)
        INPUT(b)
        OUTPUT(g6)
        g0 = AND(a, b)
        g1 = OR(a, b)
        g2 = NAND(a, b)
        g3 = NOR(a, b)
        g4 = XOR(g0, g1)
        g5 = XNOR(g2, g3)
        g6 = AND(g4, g5)
        """
        c = loads_bench(text)
        assert c.num_gates == 7


class TestParseErrors:
    def test_cycle_detected(self):
        text = """
        INPUT(a)
        OUTPUT(x)
        x = AND(a, y)
        y = NOT(x)
        """
        with pytest.raises(BenchFormatError, match="cycle"):
            loads_bench(text)

    def test_undefined_fanin(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
        with pytest.raises(BenchFormatError, match="ghost"):
            loads_bench(text)

    def test_undefined_output(self):
        text = "INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n"
        with pytest.raises(BenchFormatError):
            loads_bench(text)

    def test_dff_parses_as_sequential(self):
        # State lines used to be rejected outright; they now build a
        # SequentialCircuit (full coverage in tests/test_sequential.py).
        from repro.circuit import SequentialCircuit
        text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
        seq = loads_bench(text)
        assert isinstance(seq, SequentialCircuit)
        assert seq.num_flops == 1 and seq.state_names == ["q"]

    def test_duplicate_definition(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"
        with pytest.raises(BenchFormatError, match="twice"):
            loads_bench(text)

    def test_garbage_line(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            loads_bench("INPUT(a)\nOUTPUT(a)\nthis is not bench\n")

    def test_unknown_gate(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = FROB(a, b)\n"
        with pytest.raises(BenchFormatError):
            loads_bench(text)


class TestRoundTrip:
    def test_dump_and_reload(self, full_adder_circuit):
        text = dumps_bench(full_adder_circuit)
        reloaded = loads_bench(text, "fa2")
        for assignment in all_assignments(full_adder_circuit):
            assert (reloaded.evaluate_outputs(assignment)
                    == full_adder_circuit.evaluate_outputs(assignment))

    def test_file_round_trip(self, tmp_path, tree_circuit):
        path = tmp_path / "tree.bench"
        save_bench(tree_circuit, path)
        reloaded = load_bench(path)
        assert reloaded.name == "tree"
        assert reloaded.num_gates == tree_circuit.num_gates

    def test_constants_not_representable(self):
        from repro.circuit import Circuit
        c = Circuit("k")
        c.add_const("one", 1)
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["one", "a"])
        c.set_output("y")
        with pytest.raises(BenchFormatError):
            dumps_bench(c)

    def test_header_contains_counts(self, full_adder_circuit):
        text = dumps_bench(full_adder_circuit)
        assert "# 3 inputs, 2 outputs, 5 gates" in text
