"""Tests for noiseless observability computation (paper Sec. 3)."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.reliability import (
    bdd_observabilities,
    compute_observabilities,
    sampled_observabilities,
)
from tests.conftest import all_assignments


def brute_force_observability(circuit, gate, output):
    """Fraction of input vectors on which flipping `gate` changes `output`."""
    count = 0
    total = 0
    for assignment in all_assignments(circuit):
        clean = circuit.evaluate(assignment)
        # Re-evaluate with the gate flipped.
        flipped = dict(clean)
        flipped[gate] ^= 1
        order = circuit.topological_order()
        for name in order[order.index(gate) + 1:]:
            node = circuit.node(name)
            if node.gate_type.is_logic:
                from repro.circuit import evaluate_gate
                flipped[name] = evaluate_gate(
                    node.gate_type, [flipped[f] for f in node.fanins])
        total += 1
        if flipped[output] != clean[output]:
            count += 1
    return count / total


class TestBddObservabilities:
    def test_matches_brute_force(self, reconvergent_circuit):
        obs = bdd_observabilities(reconvergent_circuit)
        for gate in reconvergent_circuit.topological_gates():
            expected = brute_force_observability(
                reconvergent_circuit, gate, "g6")
            assert obs[gate] == pytest.approx(expected), gate

    def test_output_gate_is_fully_observable(self, tree_circuit):
        obs = bdd_observabilities(tree_circuit)
        assert obs["top"] == pytest.approx(1.0)

    def test_c17_per_output(self):
        circuit = c17()
        for out in circuit.outputs:
            obs = bdd_observabilities(circuit, output=out)
            for gate, o in obs.items():
                expected = brute_force_observability(circuit, gate, out)
                assert o == pytest.approx(expected), (gate, out)

    def test_gate_outside_cone_zero(self):
        b = CircuitBuilder("two")
        a, c = b.inputs("a", "c")
        g1 = b.not_(a, name="g1")
        g2 = b.not_(c, name="g2")
        b.outputs(g1, g2)
        circuit = b.build()
        obs = bdd_observabilities(circuit, output="g1", gates=["g1", "g2"])
        assert obs["g2"] == 0.0
        assert obs["g1"] == 1.0

    def test_multi_output_requires_name(self, full_adder_circuit):
        with pytest.raises(ValueError):
            bdd_observabilities(full_adder_circuit)

    def test_xor_gates_always_observable_through_xor_path(self):
        b = CircuitBuilder("xchain")
        a, c, d = b.inputs("a", "c", "d")
        g1 = b.xor(a, c, name="g1")
        top = b.xor(g1, d, name="top")
        b.outputs(top)
        obs = bdd_observabilities(b.build())
        assert obs["g1"] == pytest.approx(1.0)
        assert obs["top"] == pytest.approx(1.0)

    def test_masked_gate_low_observability(self):
        b = CircuitBuilder("mask")
        a, c, d = b.inputs("a", "c", "d")
        g1 = b.and_(a, c, name="g1")
        top = b.and_(g1, d, name="top")
        b.outputs(top)
        obs = bdd_observabilities(b.build())
        # g1 observable only when d = 1: probability 1/2.
        assert obs["g1"] == pytest.approx(0.5)


class TestSampledAndDispatch:
    def test_sampled_close_to_exact(self, reconvergent_circuit):
        exact = bdd_observabilities(reconvergent_circuit)
        sampled = sampled_observabilities(reconvergent_circuit,
                                          n_patterns=1 << 15)
        for gate, o in exact.items():
            assert sampled[gate] == pytest.approx(o, abs=0.02)

    def test_auto_small_uses_bdd(self, reconvergent_circuit):
        auto = compute_observabilities(reconvergent_circuit, method="auto")
        exact = bdd_observabilities(reconvergent_circuit)
        for gate, o in exact.items():
            assert auto[gate] == pytest.approx(o)

    def test_bad_method_rejected(self, tree_circuit):
        with pytest.raises(ValueError):
            compute_observabilities(tree_circuit, method="tarot")
