"""The large-netlist substrate (repro.scale + the ``outputs=`` path).

Three layers under test:

* :class:`~repro.scale.lazy_weights.LazyWeightData` — per-cone
  materialization, the bit-identity contract against full-circuit
  ``compute_weights``, and the ``conewt-`` disk cache;
* the restricted analyzer — ``SinglePassAnalyzer(..., outputs=...)``
  answers bit-identical to a full run, through the facade and the
  engine envelope path (coalescing, guards);
* the deterministic large presets (rand10k/rand50k) and their CLI
  surface (``repro bench --large``, ``repro analyze --outputs``).
"""

import json
import os

import numpy as np
import pytest

import repro
from repro.circuit import CircuitError
from repro.circuits import (
    get_benchmark,
    large_catalog,
    large_random_netlist,
    rand10k,
)
from repro.cli import main
from repro.engine import AnalysisEngine
from repro.probability.weights import compute_weights
from repro.reliability.single_pass import SinglePassAnalyzer
from repro.scale import LazyWeightData, cone_weight_vectors


def _assert_same_weights(a, b, nodes=None):
    gates = nodes if nodes is not None else list(a.weights)
    for gate in gates:
        assert np.array_equal(a.weights[gate], b.weights[gate]), gate
    probs = nodes if nodes is not None else list(a.signal_prob)
    for node in probs:
        if node in a.signal_prob:
            assert a.signal_prob[node] == b.signal_prob[node], node


class TestSubcircuit:
    def test_union_cone_and_output_order(self):
        circuit = get_benchmark("c432")
        outs = [circuit.outputs[2], circuit.outputs[0]]
        sub = circuit.subcircuit(outs)
        # Output order follows the parent circuit, not the argument.
        assert list(sub.outputs) == [circuit.outputs[0], circuit.outputs[2]]
        cone_nodes = set(circuit.transitive_fanin(outs))
        assert set(sub.topological_order()) == cone_nodes
        # Relative input order is preserved (the sampled-tier anchor).
        kept = [i for i in circuit.inputs if i in cone_nodes]
        assert list(sub.inputs) == kept
        sub.validate()

    def test_internal_node_as_output(self):
        circuit = get_benchmark("c17")
        gate = circuit.gates[0]
        sub = circuit.subcircuit([gate])
        assert gate in sub.outputs

    def test_empty_selection_rejected(self):
        with pytest.raises(CircuitError):
            get_benchmark("c17").subcircuit([])


class TestLazyWeightData:
    def test_construction_materializes_nothing(self):
        circuit = get_benchmark("c880")
        lazy = LazyWeightData(circuit, method="sampled", n_patterns=1 << 8)
        assert lazy.cones_materialized == 0
        assert lazy.materialized_gates == 0
        assert lazy.source == "lazy-sampled"

    def test_touch_materializes_one_cone_only(self):
        circuit = get_benchmark("c880")
        lazy = LazyWeightData(circuit, method="sampled", n_patterns=1 << 8)
        out = circuit.outputs[0]
        cone_size = len(circuit.cone(out).gates)
        _ = lazy.signal_prob[out]
        assert lazy.cones_materialized == 1
        assert 0 < lazy.materialized_gates <= cone_size
        assert lazy.materialized_gates < len(circuit.gates)
        # A second touch inside the same cone is a dict hit.
        _ = lazy.signal_prob[out]
        assert lazy.cones_materialized == 1

    def test_unknown_key_raises(self):
        lazy = LazyWeightData(get_benchmark("c17"))
        with pytest.raises(KeyError):
            lazy.weights["no_such_gate"]

    @pytest.mark.parametrize("method,kwargs", [
        ("exhaustive", {}),
        ("sampled", {"n_patterns": 1 << 10, "seed": 5}),
        ("sat", {"seed": 2}),
    ])
    def test_bit_identity_against_full_run(self, method, kwargs):
        circuit = get_benchmark("c17" if method != "sampled" else "c499")
        full = compute_weights(circuit, method=method, **kwargs)
        lazy = LazyWeightData(circuit, method=method, **kwargs)
        for gate in circuit.topological_gates():
            assert np.array_equal(lazy.weights[gate], full.weights[gate])
        for node in circuit.topological_order():
            assert lazy.signal_prob[node] == full.signal_prob[node]

    def test_sampled_nonuniform_bit_identity(self):
        circuit = get_benchmark("c17")
        probs = {circuit.inputs[0]: 0.2, circuit.inputs[1]: 0.9}
        full = compute_weights(circuit, method="sampled",
                               n_patterns=1 << 10, input_probs=probs)
        lazy = LazyWeightData(circuit, method="sampled",
                              n_patterns=1 << 10, input_probs=probs)
        _assert_same_weights(full, lazy.restrict(circuit.outputs))

    def test_restrict_returns_plain_snapshot(self):
        circuit = get_benchmark("c432")
        lazy = LazyWeightData(circuit, method="sampled", n_patterns=1 << 8)
        out = circuit.outputs[0]
        snap = lazy.restrict([out])
        cone = circuit.subcircuit([out])
        assert set(snap.weights) == set(cone.topological_gates())
        assert set(snap.signal_prob) == set(cone.topological_order())
        assert snap.source == "sampled"
        full = compute_weights(circuit, method="sampled",
                               n_patterns=1 << 8)
        _assert_same_weights(snap, full, nodes=list(snap.weights))

    def test_auto_resolves_against_full_circuit(self):
        # c499 has 41 inputs: full-circuit auto lands on sampled, and the
        # lazy path must follow even for a tiny (say 5-input) cone.
        circuit = get_benchmark("c499")
        lazy = LazyWeightData(circuit, method="auto", n_patterns=1 << 8)
        assert lazy.method == "sampled"
        small = get_benchmark("c17")
        assert LazyWeightData(small, method="auto").method == "exhaustive"


class TestConeCache:
    def _lazy(self, cache_dir):
        circuit = get_benchmark("c432")
        return circuit, LazyWeightData(circuit, method="sampled",
                                       n_patterns=1 << 8,
                                       cache_dir=str(cache_dir))

    def _entries(self, cache_dir):
        return sorted(p for p in os.listdir(cache_dir)
                      if p.startswith("conewt-"))

    def test_round_trip_and_namespace(self, tmp_path):
        circuit, lazy = self._lazy(tmp_path)
        out = circuit.outputs[0]
        snap = lazy.restrict([out])
        entries = self._entries(tmp_path)
        assert len(entries) == 1  # one union cone, one entry
        # Second store under the same key: served from cache, same data.
        circuit2, lazy2 = self._lazy(tmp_path)
        snap2 = lazy2.restrict([out])
        assert self._entries(tmp_path) == entries
        _assert_same_weights(snap, snap2)
        # The cone namespace never shadows full-circuit entries.
        full = compute_weights(circuit, method="sampled",
                               n_patterns=1 << 8, cache_dir=str(tmp_path))
        names = sorted(os.listdir(tmp_path))
        assert any(n.startswith("weights-") for n in names)
        assert any(n.startswith("conewt-") for n in names)
        _assert_same_weights(snap, full, nodes=list(snap.weights))

    def test_corrupt_cone_entry_is_a_miss(self, tmp_path):
        circuit, lazy = self._lazy(tmp_path)
        out = circuit.outputs[0]
        reference = lazy.restrict([out])
        (entry,) = self._entries(tmp_path)
        with open(tmp_path / entry, "wb") as fh:
            fh.write(b"garbage, not an npz archive")
        _, lazy2 = self._lazy(tmp_path)
        again = lazy2.restrict([out])
        _assert_same_weights(reference, again)
        # The rewrite healed the entry.
        _, lazy3 = self._lazy(tmp_path)
        assert self._entries(tmp_path) == [entry]
        _assert_same_weights(reference, lazy3.restrict([out]))

    def test_different_selections_get_distinct_entries(self, tmp_path):
        circuit, lazy = self._lazy(tmp_path)
        lazy.restrict([circuit.outputs[0]])
        lazy.restrict([circuit.outputs[0], circuit.outputs[1]])
        assert len(self._entries(tmp_path)) == 2


class TestRestrictedAnalyzer:
    @pytest.mark.parametrize("correlation", [True, False])
    @pytest.mark.parametrize("name", ["c17", "c499", "c880"])
    def test_bit_identical_to_full_run(self, name, correlation):
        circuit = get_benchmark(name)
        sel = [circuit.outputs[-1], circuit.outputs[0]]
        full = SinglePassAnalyzer(
            circuit, weight_method="sampled", n_patterns=1 << 10,
            use_correlation=correlation).run(0.05)
        part = SinglePassAnalyzer(
            circuit, weight_method="sampled", n_patterns=1 << 10,
            use_correlation=correlation, outputs=sel).run(0.05)
        assert sorted(part.per_output) == sorted(sel)
        for out in sel:
            assert part.per_output[out] == full.per_output[out]

    def test_selection_validation(self):
        circuit = get_benchmark("c17")
        with pytest.raises(ValueError, match="not primary outputs"):
            SinglePassAnalyzer(circuit, outputs=["nope"])
        with pytest.raises(ValueError, match="at least one"):
            SinglePassAnalyzer(circuit, outputs=[])

    def test_duplicate_selection_deduped(self):
        circuit = get_benchmark("c17")
        out = circuit.outputs[0]
        analyzer = SinglePassAnalyzer(circuit, outputs=[out, out])
        assert analyzer.outputs_restriction == (out,)

    def test_reuses_lazy_weight_store(self):
        circuit = get_benchmark("c880")
        lazy = LazyWeightData(circuit, method="sampled", n_patterns=1 << 8)
        out = circuit.outputs[0]
        analyzer = SinglePassAnalyzer(circuit, weights=lazy,
                                      weight_method="sampled",
                                      n_patterns=1 << 8, outputs=[out])
        assert lazy.cones_materialized == 1
        assert analyzer.circuit.outputs == (out,) \
            or list(analyzer.circuit.outputs) == [out]


class TestFacadeAndEngine:
    def test_facade_outputs_matches_full(self):
        circuit = get_benchmark("c432")
        sel = [circuit.outputs[0]]
        full = repro.analyze(circuit, 0.02, n_patterns=1 << 10,
                             weights="sampled")
        part = repro.analyze(circuit, 0.02, n_patterns=1 << 10,
                             weights="sampled", outputs=sel)
        assert list(part.per_output) == sel
        assert part.per_output[sel[0]] == full.per_output[sel[0]]

    def test_envelope_carries_outputs(self):
        with AnalysisEngine(max_sessions=4) as engine:
            env = engine.submit({"op": "analyze", "circuit": "c17",
                                 "eps": 0.05, "outputs": ["22"]}).to_dict()
            assert env["ok"], env.get("error")
            assert env["outputs"] == ["22"]
            point = env["result"]["points"][0]
            assert list(point["per_output"]) == ["22"]
            # Full-circuit traffic keeps outputs off the wire entirely.
            env_full = engine.submit({"op": "analyze", "circuit": "c17",
                                      "eps": 0.05}).to_dict()
            assert "outputs" not in env_full

    def test_restricted_and_full_coalesce_separately(self):
        with AnalysisEngine(max_sessions=4) as engine:
            reqs = [
                {"id": 1, "op": "analyze", "circuit": "c17", "eps": 0.05,
                 "outputs": ["22"]},
                {"id": 2, "op": "analyze", "circuit": "c17", "eps": 0.01,
                 "outputs": ["22"]},
                {"id": 3, "op": "analyze", "circuit": "c17", "eps": 0.05},
            ]
            envs = {r.id: r.to_dict() for r in engine.submit_many(reqs)}
            assert all(e["ok"] for e in envs.values())
            assert envs[1]["coalesced"] == 2 and envs[2]["coalesced"] == 2
            assert envs[3]["coalesced"] == 0
            assert envs[1]["outputs"] == ["22"]

    def test_outputs_guards(self):
        with AnalysisEngine(max_sessions=4) as engine:
            env = engine.submit({"op": "analyze", "circuit": "c17",
                                 "eps": 0.05, "method": "mc",
                                 "outputs": ["22"]}).to_dict()
            assert not env["ok"]
            assert "does not support an outputs= restriction" in env["error"]
            env = engine.submit({"op": "edit", "session": "s1",
                                 "circuit": "c17", "eps": 0.05,
                                 "edits": [{"kind": "set_eps",
                                            "eps": 0.1}],
                                 "options": {"outputs": ["22"]}}).to_dict()
            assert not env["ok"]
            assert "incremental edit sessions" in env["error"]

    def test_unknown_output_is_a_clean_error(self):
        with AnalysisEngine(max_sessions=4) as engine:
            env = engine.submit({"op": "analyze", "circuit": "c17",
                                 "eps": 0.05,
                                 "outputs": ["bogus"]}).to_dict()
            assert not env["ok"]
            assert "not primary outputs" in env["error"]


class TestLargePresets:
    def test_probe_outputs_have_documented_support(self):
        circuit = rand10k()
        from repro.circuit.analysis import input_support
        support = input_support(circuit)
        assert "probe_small" in circuit.outputs
        assert "probe_mid" in circuit.outputs
        assert len(support["probe_small"]) <= 8
        assert len(support["probe_mid"]) <= 20
        assert len(circuit.gates) >= 10_000

    def test_deterministic_generation(self):
        from repro.probability.weight_cache import structural_hash
        assert structural_hash(rand10k()) == structural_hash(rand10k())
        a = large_random_netlist(2_000, seed=9)
        b = large_random_netlist(2_000, seed=9)
        assert structural_hash(a) == structural_hash(b)
        assert structural_hash(a) != \
            structural_hash(large_random_netlist(2_000, seed=10))

    def test_catalog_fallthrough(self):
        names = large_catalog()
        assert names == ["rand10k", "rand50k", "rand100k"]
        circuit = get_benchmark("rand10k")
        assert len(circuit.gates) >= 10_000
        with pytest.raises(KeyError):
            get_benchmark("rand9999")

    def test_restricted_analysis_on_probe_cone(self):
        circuit = rand10k()
        result = repro.analyze(circuit, 0.05, outputs=["probe_small"],
                               weights="sat")
        assert list(result.per_output) == ["probe_small"]
        assert 0.0 <= result.delta("probe_small") <= 1.0


class TestCli:
    def test_bench_large_lists_presets(self, capsys):
        assert main(["bench", "--large"]) == 0
        out = capsys.readouterr().out
        for name in ("rand10k", "rand50k", "rand100k"):
            assert name in out

    def test_analyze_outputs_flag(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.05",
                     "--outputs", "22", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        point = data["points"][0]
        assert list(point["per_output"]) == ["22"]

    def test_analyze_outputs_matches_full_cli_run(self, capsys):
        args = ["analyze", "c17", "--eps", "0.05", "--json"]
        assert main(args) == 0
        full = json.loads(capsys.readouterr().out)
        assert main(args[:-1] + ["--outputs", "23", "--json"]) == 0
        part = json.loads(capsys.readouterr().out)
        assert part["points"][0]["per_output"]["23"] == \
            full["points"][0]["per_output"]["23"]

    def test_analyze_bad_output_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "c17", "--eps", "0.05", "--outputs", "zork"])

    def test_analyze_sat_weights(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.05",
                     "--weights", "sat", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["points"][0]["per_output"]
