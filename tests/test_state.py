"""Durable warm state and the async serve tier's control plane.

Covers the persistence layer end to end: workspace snapshots round-trip
bit-exactly for every edit kind, engine save/load survives corrupt
entries, batches journal and resume, admission control sheds load with
overload envelopes (which ``repro top`` renders instead of crashing),
read-only requests coalesce across different named edit sessions, and —
the headline — a ``repro serve`` process SIGKILLed mid-edit-session
resumes from its ``--state-dir`` with byte-identical analysis results.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.catalog import get_benchmark
from repro.engine import AnalysisEngine, handle_line, run_batch, serve_tcp
from repro.engine.serve import AdmissionControl, overload_envelope
from repro.probability.weight_cache import (
    load_workspace_state,
    store_workspace_state,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

OPTS = {"weights": "sampled", "n_patterns": 1 << 10, "seed": 7}

#: One edit request per kind (c17 node names are numeric strings).  The
#: add/remove pair exercises remove_gate against a node that is dangling
#: by construction.
EDITS_BY_KIND = {
    "set_eps": [{"kind": "set_eps", "eps": 0.03}],
    "swap_gate": [{"kind": "swap_gate", "gate": "16", "gate_type": "nor"}],
    "add_gate": [{"kind": "add_gate", "name": "spare", "gate_type": "and",
                  "fanins": ["10", "11"], "output": True, "eps": 0.02}],
    "remove_gate": [{"kind": "add_gate", "name": "tmp", "gate_type": "or",
                     "fanins": ["10", "11"]},
                    {"kind": "remove_gate", "gate": "tmp"}],
    "triplicate": [{"kind": "triplicate", "gates": ["19"],
                    "voter_eps": 0.005}],
}

ALL_EDITS = [edit for edits in EDITS_BY_KIND.values() for edit in edits]


def _edit(engine, session, edits, circuit="c17"):
    env = engine.submit({"op": "edit", "session": session,
                         "circuit": circuit, "edits": edits,
                         "options": dict(OPTS)}).to_dict()
    assert env["ok"], env.get("error")
    return env


def _reanalyze(engine, session):
    env = engine.submit({"op": "reanalyze", "session": session}).to_dict()
    assert env["ok"], env.get("error")
    return env


def _result_bytes(envelope):
    """The analysis payload as canonical bytes (for byte-match asserts)."""
    return json.dumps(envelope["result"], sort_keys=True).encode()


class TestWorkspaceStateRoundtrip:
    @pytest.mark.parametrize("kind", sorted(EDITS_BY_KIND))
    def test_roundtrip_bit_exact_per_edit_kind(self, kind, tmp_path):
        state_dir = str(tmp_path)
        original = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            _edit(original, "ws", EDITS_BY_KIND[kind])
            expected = _reanalyze(original, "ws")
            summary = original.save_state()
            assert summary["sessions"] == 1
            ws_orig = original._edit_sessions["ws"].workspace()
            pack_orig = {n: ws_orig._values[n].copy()
                         for n in ws_orig._values}
        finally:
            original.close()

        restored = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            summary = restored.load_state()
            assert summary["found"] and summary["sessions"] == 1
            assert not summary["errors"]
            resumed = _reanalyze(restored, "ws")
            assert _result_bytes(resumed) == _result_bytes(expected)
            ws_new = restored._edit_sessions["ws"].workspace()
            assert set(ws_new._values) == set(pack_orig)
            for name, words in pack_orig.items():
                np.testing.assert_array_equal(
                    ws_new._values[name][:len(words)], words)
        finally:
            restored.close()

    def test_all_edit_kinds_stacked(self, tmp_path):
        state_dir = str(tmp_path)
        original = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            _edit(original, "ws", ALL_EDITS)
            expected = _reanalyze(original, "ws")
            original.save_state()
        finally:
            original.close()
        restored = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            assert restored.load_state()["sessions"] == 1
            resumed = _reanalyze(restored, "ws")
            assert _result_bytes(resumed) == _result_bytes(expected)
            # The restored session keeps editing: the edit log replays
            # into the same incremental machinery, not a frozen copy.
            _edit(restored, "ws", [{"kind": "set_eps", "eps": 0.11}])
            env = _reanalyze(restored, "ws")
            assert env["result"]["points"][0]["eps"]["default"] == 0.11
        finally:
            restored.close()


class TestEngineStateFiles:
    def test_save_without_state_dir_raises(self):
        engine = AnalysisEngine(max_sessions=2)
        try:
            with pytest.raises(ValueError, match="state directory"):
                engine.save_state()
        finally:
            engine.close()

    def test_save_op_envelopes(self, tmp_path):
        stateful = AnalysisEngine(max_sessions=2, state_dir=str(tmp_path))
        try:
            _edit(stateful, "ws", EDITS_BY_KIND["set_eps"])
            env = json.loads(json.dumps(
                handle_line(stateful, '{"op": "save", "id": 9}')))
            assert env["ok"] and env["op"] == "save" and env["id"] == 9
            assert env["state"]["sessions"] == 1
        finally:
            stateful.close()
        stateless = AnalysisEngine(max_sessions=2)
        try:
            env = handle_line(stateless, '{"op": "save"}')
            assert not env["ok"] and "state directory" in env["error"]
        finally:
            stateless.close()

    def test_corrupt_entry_skipped_not_fatal(self, tmp_path):
        state_dir = str(tmp_path)
        engine = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            _edit(engine, "good", EDITS_BY_KIND["set_eps"])
            _edit(engine, "bad", EDITS_BY_KIND["swap_gate"])
            engine.save_state()
        finally:
            engine.close()
        # Truncate the "bad" session's entry file in place.
        manifest = json.loads(
            (tmp_path / "engine-state.json").read_text())
        bad_file = next(e["file"] for e in manifest["sessions"]
                        if e["name"] == "bad")
        (tmp_path / bad_file).write_bytes(b"garbage")
        restored = AnalysisEngine(max_sessions=4, state_dir=state_dir)
        try:
            summary = restored.load_state()
            assert summary["found"] and summary["sessions"] == 1
            assert any("bad" in err for err in summary["errors"])
            assert "good" in restored._edit_sessions
            assert "bad" not in restored._edit_sessions
        finally:
            restored.close()

    def test_wstate_corruption_is_a_miss(self, tmp_path):
        circuit = get_benchmark("c17")
        engine = AnalysisEngine(max_sessions=2, state_dir=str(tmp_path))
        try:
            _edit(engine, "ws", EDITS_BY_KIND["set_eps"])
            ws = engine._edit_sessions["ws"].workspace()
            manifest, arrays = ws.to_state()
            path = store_workspace_state(str(tmp_path), "solo",
                                         manifest, arrays)
            assert load_workspace_state(str(tmp_path), "solo") is not None
            Path(path).write_bytes(b"\x00" * 16)
            assert load_workspace_state(str(tmp_path), "solo") is None
            assert circuit.inputs  # circuit untouched by the corruption
        finally:
            engine.close()


class TestBatchResume:
    LINES = [
        json.dumps({"id": i, "op": "analyze", "circuit": name,
                    "eps": [0.01, 0.05], "options": OPTS})
        for i, name in enumerate(["c17", "fig2", "fig1a", "b9"])
    ] + [
        json.dumps({"id": "e", "op": "edit", "session": "ws",
                    "circuit": "c17",
                    "edits": [{"kind": "set_eps", "eps": 0.04}],
                    "options": OPTS}),
        json.dumps({"id": "r", "op": "reanalyze", "session": "ws"}),
    ]

    def _run(self, tmp_path, out_name, resume, lines=None):
        engine = AnalysisEngine(max_sessions=8, state_dir=str(tmp_path))
        out = tmp_path / out_name
        try:
            with open(out, "w") as fh:
                failures = run_batch(engine, lines or self.LINES, fh,
                                     state_dir=str(tmp_path),
                                     resume=resume, checkpoint_every=2)
            return failures, out.read_text().splitlines(), engine
        finally:
            engine.close()

    def test_completed_journal_replays_without_recompute(self, tmp_path):
        failures, first, _ = self._run(tmp_path, "a.jsonl", resume=False)
        assert failures == 0
        engine = AnalysisEngine(max_sessions=8, state_dir=str(tmp_path))
        out = tmp_path / "b.jsonl"
        try:
            with open(out, "w") as fh:
                assert run_batch(engine, self.LINES, fh,
                                 state_dir=str(tmp_path), resume=True) == 0
            # Everything came from the journal: byte-identical output,
            # zero requests re-executed.
            assert out.read_text().splitlines() == first
            assert engine.stats()["requests_served"] == 0
        finally:
            engine.close()

    def test_partial_journal_resumes_remainder(self, tmp_path):
        _, first, _ = self._run(tmp_path, "a.jsonl", resume=False)
        journal = tmp_path / "batch-journal.jsonl"
        kept = journal.read_text().splitlines()[:3]  # header + 2 entries
        journal.write_text("\n".join(kept) + "\n")
        failures, second, _ = self._run(tmp_path, "b.jsonl", resume=True)
        assert failures == 0
        assert len(second) == len(first)
        # Journaled lines replay byte-identically; recomputed lines agree
        # on the analysis payload (timing telemetry legitimately differs).
        assert second[:2] == first[:2]
        for a, b in zip(first, second):
            ea, eb = json.loads(a), json.loads(b)
            assert eb["ok"]
            assert ea.get("result") == eb.get("result")

    def test_torn_journal_tail_keeps_valid_prefix(self, tmp_path):
        self._run(tmp_path, "a.jsonl", resume=False)
        journal = tmp_path / "batch-journal.jsonl"
        with open(journal, "a") as fh:
            fh.write('{"line": 99, "envelope"')  # crash mid-append
        failures, lines, _ = self._run(tmp_path, "b.jsonl", resume=True)
        assert failures == 0 and len(lines) == len(self.LINES)

    def test_fingerprint_mismatch_starts_fresh(self, tmp_path):
        self._run(tmp_path, "a.jsonl", resume=False)
        changed = list(self.LINES)
        changed[0] = json.dumps({"id": 0, "op": "analyze",
                                 "circuit": "c17", "eps": [0.2],
                                 "options": OPTS})
        failures, lines, _ = self._run(tmp_path, "b.jsonl", resume=True,
                                       lines=changed)
        assert failures == 0
        assert json.loads(lines[0])["result"]["points"][0]["eps"] == 0.2


class TestAdmissionControl:
    def test_gate_counts_and_release(self):
        gate = AdmissionControl(limit=2)
        assert gate.try_acquire() and gate.try_acquire()
        assert gate.saturated
        assert not gate.try_acquire()
        snap = gate.snapshot()
        assert snap["inflight"] == 2 and snap["limit"] == 2
        assert snap["accepted"] == 2 and snap["rejected"] == 1
        gate.release(2)
        assert not gate.saturated and gate.try_acquire()

    def test_retry_after_bounds(self):
        gate = AdmissionControl(limit=4)
        assert gate.retry_after_s() >= 0.05
        gate.note_service(100.0)
        gate.inflight = 4
        assert gate.retry_after_s() <= 30.0

    def test_overload_envelope_shape(self):
        gate = AdmissionControl(limit=1)
        gate.try_acquire()
        env = overload_envelope({"id": 3, "op": "analyze",
                                 "circuit": "c17"}, gate)
        assert not env["ok"] and env["id"] == 3
        assert "overloaded" in env["error"]
        over = env["overload"]
        assert over["limit"] == 1 and over["inflight"] == 1
        assert over["retry_after_s"] > 0

    def test_tcp_burst_sheds_with_overload_envelopes(self):
        """A 1-slot server answers a pipelined burst with overloads."""
        engine = AnalysisEngine(max_sessions=8)
        ready = threading.Event()
        box = {}

        def on_ready(port):
            box["port"] = port
            ready.set()

        thread = threading.Thread(
            target=serve_tcp, args=(engine, "127.0.0.1", 0),
            kwargs={"ready_callback": on_ready, "max_inflight": 1},
            daemon=True)
        thread.start()
        assert ready.wait(10)
        sock = socket.create_connection(("127.0.0.1", box["port"]),
                                        timeout=120)
        stream = sock.makefile("rwb")
        try:
            # First request holds the engine (cold c432 session build);
            # the rest of the burst arrives while it is in flight.
            burst = [{"id": 0, "op": "analyze", "circuit": "c432",
                      "eps": 0.01, "options": OPTS}]
            burst += [{"id": i, "op": "analyze", "circuit": "c17",
                       "eps": 0.01, "options": OPTS}
                      for i in range(1, 9)]
            burst.append({"id": "s", "op": "stats"})
            stream.write("".join(json.dumps(r) + "\n"
                                 for r in burst).encode())
            stream.flush()
            envs = [json.loads(stream.readline()) for _ in burst]
            shed = [e for e in envs if "overload" in e]
            served = [e for e in envs if e.get("ok")]
            assert served, envs
            assert shed, "burst at max_inflight=1 shed nothing"
            for env in shed:
                assert not env["ok"]
                assert env["overload"]["limit"] == 1
                assert env["overload"]["retry_after_s"] > 0
        finally:
            sock.close()
            engine.close()


class TestTopOverloadRendering:
    def test_top_frame_renders_overload(self):
        from repro.cli import _top_frame
        gate = AdmissionControl(limit=2)
        gate.try_acquire()
        gate.try_acquire()
        env = overload_envelope({"op": "stats"}, gate)
        text, retry_after = _top_frame("127.0.0.1:7777", env)
        assert "OVERLOADED" in text and "2/2" in text
        assert retry_after == env["overload"]["retry_after_s"]

    def test_top_frame_tolerates_missing_stats_payload(self):
        from repro.cli import _top_frame
        text, retry_after = _top_frame("x:1", {"ok": True, "op": "stats"})
        assert "repro top" in text and retry_after is None

    def test_top_frame_shows_admission_section(self):
        from repro.cli import _top_frame
        stats = {"version": "1", "uptime_s": 1.0, "rolling": {},
                 "admission": {"limit": 8, "inflight": 3, "accepted": 40,
                               "rejected": 2, "service_ewma_ms": 12.5,
                               "retry_after_s": 0.05}}
        text, _ = _top_frame("x:1", {"ok": True, "stats": stats})
        assert "admission" in text and "3/8" in text


class TestCrossSessionCoalescing:
    def test_same_structure_sessions_coalesce_bit_exact(self):
        engine = AnalysisEngine(max_sessions=8)
        try:
            _edit(engine, "a", [{"kind": "set_eps", "eps": 0.02}])
            _edit(engine, "b", [{"kind": "set_eps", "eps": 0.07}])
            solo = {name: _reanalyze(engine, name) for name in ("a", "b")}
            envs = [r.to_dict() for r in engine.submit_many(
                [{"op": "reanalyze", "session": "a"},
                 {"op": "reanalyze", "session": "b"}])]
            for env, name in zip(envs, ("a", "b")):
                assert env["ok"], env.get("error")
                assert env["coalesced"] == 2, (
                    "same-structure sessions should share one kernel call")
                assert _result_bytes(env) == _result_bytes(solo[name])
        finally:
            engine.close()

    def test_structural_divergence_blocks_coalescing(self):
        engine = AnalysisEngine(max_sessions=8)
        try:
            _edit(engine, "a", [{"kind": "set_eps", "eps": 0.02}])
            _edit(engine, "b", EDITS_BY_KIND["swap_gate"])
            envs = [r.to_dict() for r in engine.submit_many(
                [{"op": "reanalyze", "session": "a"},
                 {"op": "reanalyze", "session": "b"}])]
            assert all(e["ok"] for e in envs)
            assert [e["coalesced"] for e in envs] == [0, 0]
        finally:
            engine.close()

    def test_stateful_op_in_batch_blocks_that_session(self):
        engine = AnalysisEngine(max_sessions=8)
        try:
            _edit(engine, "a", [{"kind": "set_eps", "eps": 0.02}])
            _edit(engine, "b", [{"kind": "set_eps", "eps": 0.07}])
            envs = [r.to_dict() for r in engine.submit_many(
                [{"op": "reanalyze", "session": "a"},
                 {"op": "reanalyze", "session": "b"},
                 {"op": "edit", "session": "b",
                  "edits": [{"kind": "set_eps", "eps": 0.09}]}])]
            assert all(e["ok"] for e in envs), envs
            # Session b has an edit in the same batch: its reanalyze must
            # run solo, in submission order, and see the pre-edit eps.
            assert envs[1]["coalesced"] == 0
            assert envs[1]["result"]["points"][0]["eps"]["default"] == 0.07
            env = _reanalyze(engine, "b")
            assert env["result"]["points"][0]["eps"]["default"] == 0.09
        finally:
            engine.close()


def _spawn_serve(state_dir):
    """Boot ``repro serve --tcp`` in a subprocess; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tcp", "127.0.0.1:0",
         "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, cwd=str(REPO_ROOT), text=True)
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise RuntimeError("serve subprocess died before readiness line")
    assert line.startswith("serving on "), line
    port = int(line.strip().rsplit(":", 1)[1])
    return proc, port


def _rpc(stream, obj):
    stream.write((json.dumps(obj) + "\n").encode())
    stream.flush()
    line = stream.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


class TestCrashResumeTCP:
    def test_sigkill_then_restart_resumes_byte_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-session, resume, match."""
        # Reference: the uninterrupted in-process run.
        reference = AnalysisEngine(max_sessions=4)
        try:
            _edit(reference, "ws", ALL_EDITS)
            expected = _reanalyze(reference, "ws")
        finally:
            reference.close()

        proc, port = _spawn_serve(tmp_path)
        try:
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=120)
            stream = sock.makefile("rwb")
            try:
                env = _rpc(stream, {"op": "edit", "session": "ws",
                                    "circuit": "c17", "edits": ALL_EDITS,
                                    "options": OPTS})
                assert env["ok"], env.get("error")
                env = _rpc(stream, {"op": "save"})
                assert env["ok"] and env["state"]["sessions"] == 1
            finally:
                sock.close()
            # No orderly shutdown: the process is killed outright.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        proc, port = _spawn_serve(tmp_path)
        try:
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=120)
            stream = sock.makefile("rwb")
            try:
                env = _rpc(stream, {"op": "reanalyze", "session": "ws"})
                assert env["ok"], env.get("error")
                assert _result_bytes(env) == _result_bytes(expected)
            finally:
                sock.close()
        finally:
            proc.kill()
            proc.wait(timeout=30)
