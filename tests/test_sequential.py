"""Sequential-circuit subsystem tests (docs/sequential.md).

Covers the state-element data model, ``.bench``/BLIF state parsing, the
time-frame unrolling transform (including the k=1 stateless identity on
the whole combinational catalog), the frame-iterated analyzer and its
steady-state fixed point against explicit accumulation, the engine's
``frames`` axis end to end (façade, serve envelopes, edit sessions), and
the byte-identity guarantee for combinational payloads.
"""

import io
import json

import pytest

import repro
from repro.circuit import (
    SequentialBuilder,
    SequentialCircuit,
    is_sequential,
    unroll,
)
from repro.circuits import (
    get_benchmark,
    get_sequential_benchmark,
    list_benchmarks,
    list_sequential_benchmarks,
)
from repro.engine import AnalysisEngine, serve_stream
from repro.io import (
    BenchFormatError,
    dumps_bench,
    dumps_blif,
    loads_bench,
    loads_blif,
)
from repro.reliability import SequentialAnalyzer, SinglePassAnalyzer

OPTS = {"weights": "sampled", "n_patterns": 1 << 10}

#: A stateful netlist exercising DFF parse -> unroll -> sweep round trips.
BENCH_SEQ = """\
INPUT(a)
INPUT(b)
OUTPUT(f)
q = DFF(g)
g = AND(a, q)
f = XOR(g, b)
"""


# ----------------------------------------------------------------------
# Parsing and round trips
# ----------------------------------------------------------------------

class TestStateParsing:
    def test_bench_round_trip(self):
        seq = loads_bench(BENCH_SEQ)
        assert is_sequential(seq)
        assert seq.num_flops == 1
        assert seq.state_names == ["q"]
        again = loads_bench(dumps_bench(seq))
        assert isinstance(again, SequentialCircuit)
        assert again.structural_signature() == seq.structural_signature()

    def test_blif_round_trip(self):
        seq = loads_bench(BENCH_SEQ)
        again = loads_blif(dumps_blif(seq))
        assert isinstance(again, SequentialCircuit)
        assert again.structural_signature() == seq.structural_signature()

    def test_dangling_dff_named_error(self):
        src = ("INPUT(a)\nOUTPUT(f)\n"
               "q = DFF(f)\n"        # q drives nothing, is not an output
               "f = AND(a, a)\n")
        with pytest.raises(BenchFormatError,
                           match="dangling state element"):
            loads_bench(src)

    def test_undefined_dff_driver_named_error(self):
        src = "INPUT(a)\nOUTPUT(f)\nq = DFF(ghost)\nf = AND(a, q)\n"
        with pytest.raises(BenchFormatError, match="ghost"):
            loads_bench(src)

    def test_combinational_netlists_stay_plain_circuits(self):
        src = "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"
        assert not is_sequential(loads_bench(src))


# ----------------------------------------------------------------------
# Unrolling
# ----------------------------------------------------------------------

class TestUnroll:
    @pytest.mark.parametrize("name", list_benchmarks())
    def test_k1_stateless_unroll_is_identity(self, name):
        """unroll(c, 1) of a combinational circuit is bit-identical to
        the circuit itself — same names, same netlist text."""
        circuit = get_benchmark(name)
        unrolled = unroll(circuit, 1)
        assert dumps_bench(unrolled) == dumps_bench(circuit)

    def test_k1_stateless_analysis_bit_identical(self):
        circuit = get_benchmark("c17")
        a = SinglePassAnalyzer(circuit, seed=1)
        b = SinglePassAnalyzer(unroll(circuit, 1), seed=1)
        assert (json.dumps(a.run(0.05).to_dict())
                == json.dumps(b.run(0.05).to_dict()))

    def test_unroll_structural_stability(self):
        seq = get_sequential_benchmark("seq_lfsr4")
        one = dumps_bench(unroll(seq, 3))
        two = dumps_bench(unroll(get_sequential_benchmark("seq_lfsr4"), 3))
        assert one == two

    def test_unrolled_outputs_per_frame(self):
        seq = loads_bench(BENCH_SEQ)
        unrolled = unroll(seq, 3)
        assert [o for o in unrolled.outputs] == ["f@0", "f@1", "f@2"]


# ----------------------------------------------------------------------
# Frame iteration and steady state
# ----------------------------------------------------------------------

class TestSequentialAnalyzer:
    def test_compiled_frames_match_scalar_oracle(self):
        seq = get_sequential_benchmark("seq_counter3")
        fast = SequentialAnalyzer(seq, compiled="auto")
        oracle = SequentialAnalyzer(seq, compiled="off")
        for got, want in zip(fast.frame_deltas(0.01, 4),
                             oracle.frame_deltas(0.01, 4)):
            for out in want:
                assert got[out] == pytest.approx(want[out], abs=1e-10)

    def test_steady_state_matches_explicit_accumulation(self):
        """The fixed point must agree with explicitly iterating the same
        number of frames from the error-free state."""
        seq = get_sequential_benchmark("seq_counter3")
        analyzer = SequentialAnalyzer(seq)
        # Convergence is geometric at rate ~(1 - 2 eps) per frame, so a
        # moderate eps keeps the fixed point within the frame cap.
        ss = analyzer.steady_state(0.05, tol=1e-12)
        assert ss.converged
        explicit = analyzer.frame_deltas(0.05, ss.iterations)
        for out, value in ss.per_output.items():
            assert value == pytest.approx(explicit[-1][out], abs=1e-8)
        assert ss.per_frame == explicit

    def test_steady_state_on_bench_fixture_converges(self):
        seq = loads_bench(BENCH_SEQ)
        ss = SequentialAnalyzer(seq).steady_state(0.01)
        assert ss.converged and ss.residual <= ss.tol
        assert set(ss.state_flip) == {"q"}
        assert 0.0 < ss.state_flip["q"] < 0.5
        # Cumulative multi-cycle error dominates any single cycle.
        assert ss.cumulative("f") >= ss.delta("f")

    def test_input_errors_may_not_seed_state(self):
        from repro.probability.error_propagation import ErrorProbability
        seq = loads_bench(BENCH_SEQ)
        with pytest.raises(ValueError, match="state"):
            SequentialAnalyzer(
                seq, input_errors={"q": ErrorProbability(0.1, 0.1)})


# ----------------------------------------------------------------------
# Engine, façade, serve
# ----------------------------------------------------------------------

class TestEngineFrames:
    @pytest.fixture()
    def engine(self):
        with AnalysisEngine(max_sessions=4) as eng:
            yield eng

    def test_facade_requires_frames_for_sequential(self):
        with pytest.raises(ValueError, match="frames"):
            repro.analyze("seq_counter3", 0.01)

    def test_facade_frames_result_has_per_frame(self):
        result = repro.analyze("seq_counter3", 0.01, frames=3, **OPTS)
        assert result.frames == 3
        assert len(result.per_frame) == 3
        doc = result.to_dict()
        assert doc["frames"] == 3 and len(doc["per_frame"]) == 3

    def test_combinational_payloads_stay_byte_identical(self, engine):
        env = engine.submit({"op": "analyze", "circuit": "c17",
                             "eps": 0.05, "options": OPTS}).to_dict()
        assert env["ok"]
        assert "frames" not in env
        assert "frames" not in env["result"]["points"][0]
        assert "per_frame" not in env["result"]["points"][0]

    def test_serve_envelope_per_frame_matches_scalar_oracle(
            self, engine, tmp_path):
        path = tmp_path / "acc.bench"
        path.write_text(BENCH_SEQ)
        line = json.dumps({"op": "analyze", "circuit": str(path),
                           "eps": 0.01, "frames": 3, "options": OPTS})
        out = io.StringIO()
        served = serve_stream(engine, io.StringIO(line + "\n"), out)
        assert served == 1
        env = json.loads(out.getvalue())
        assert env["ok"], env.get("error")
        assert env["frames"] == 3
        point = env["result"]["points"][0]
        assert point["frames"] == 3 and len(point["per_frame"]) == 3
        # Scalar oracle on the same unrolled netlist, same options.
        oracle = SinglePassAnalyzer(
            unroll(loads_bench(BENCH_SEQ), 3), compiled="off",
            weight_method="sampled", n_patterns=1 << 10, frames=3)
        want = oracle.run(0.01)
        for frame_got, frame_want in zip(point["per_frame"],
                                         want.per_frame):
            for out_name, value in frame_want.items():
                assert frame_got[out_name] == pytest.approx(
                    value, abs=1e-10)

    def test_sessions_keyed_on_frames(self, engine):
        for frames in (2, 3, 2):
            r = engine.submit({"op": "analyze", "circuit": "seq_counter3",
                               "eps": 0.01, "frames": frames,
                               "options": OPTS})
            assert r.ok, r.error
        stats = engine.stats()
        assert stats["session_misses"] == 2
        assert stats["session_hits"] == 1

    def test_edit_session_reanalyze_unrolled_bit_identical(self, engine):
        """``reanalyze`` on an unrolled workspace must byte-match the
        one-shot framed analysis of the same circuit."""
        r = engine.submit({"op": "edit", "session": "seq1",
                           "circuit": "seq_counter3", "frames": 3,
                           "edits": [{"kind": "set_eps", "eps": 0.05}],
                           "options": OPTS})
        assert r.ok, r.error
        warm = engine.submit({"op": "analyze", "session": "seq1",
                              "eps": 0.05})
        re = engine.submit({"op": "reanalyze", "session": "seq1"})
        one_shot = engine.submit({"op": "analyze",
                                  "circuit": "seq_counter3",
                                  "eps": 0.05, "frames": 3,
                                  "options": OPTS})
        assert warm.ok and re.ok and one_shot.ok, \
            (warm.error, re.error, one_shot.error)
        assert json.dumps(warm.result) == json.dumps(one_shot.result)
        # ``reanalyze`` echoes the workspace eps spec ({"default": ...},
        # same as combinational sessions); the analysis itself must still
        # byte-match the one-shot framed run.
        stripped = [{k: v for k, v in point.items() if k != "eps"}
                    for point in re.result["points"]]
        one_shot_stripped = [{k: v for k, v in point.items() if k != "eps"}
                             for point in one_shot.result["points"]]
        assert json.dumps(stripped) == json.dumps(one_shot_stripped)

    def test_stats_count_framed_traffic(self, engine):
        engine.submit({"op": "analyze", "circuit": "c17", "eps": 0.05,
                       "options": OPTS})
        summary = engine.stats()["rolling"]["ops"]
        assert "framed" not in summary["analyze"]
        engine.submit({"op": "analyze", "circuit": "seq_parity_acc",
                       "eps": 0.05, "frames": 2, "options": OPTS})
        summary = engine.stats()["rolling"]["ops"]
        assert summary["analyze"]["framed"] == 1


# ----------------------------------------------------------------------
# CLI and applications
# ----------------------------------------------------------------------

class TestCliSequential:
    def test_analyze_frames(self, capsys):
        from repro.cli import main
        assert main(["analyze", "seq_counter3", "--frames", "2",
                     "--eps", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "frame 0:" in out and "frame 1:" in out

    def test_analyze_steady_state(self, capsys):
        from repro.cli import main
        assert main(["analyze", "seq_parity_acc", "--steady-state",
                     "--eps", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "steady state after" in out and "flip[q]" in out

    def test_analyze_sequential_without_frames_exits(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="frames"):
            main(["analyze", "seq_counter3"])

    def test_steady_state_rejects_combinational(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="state"):
            main(["analyze", "c17", "--steady-state"])

    def test_bench_lists_sequential_fixtures(self, capsys):
        from repro.cli import main
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        for name in list_sequential_benchmarks():
            assert name in out

    def test_top_renders_frames_column(self):
        from repro.cli import _render_top
        stats = {"rolling": {"ops": {"analyze": {
            "count": 3, "window": 3, "mean_ms": 1.0, "p50_ms": 1.0,
            "p95_ms": 1.0, "p99_ms": 1.0, "errors": 0, "framed": 2}}}}
        text = _render_top("x:1", stats)
        assert "frames" in text
        # Without framed traffic the column stays hidden.
        del stats["rolling"]["ops"]["analyze"]["framed"]
        assert "frames" not in _render_top("x:1", stats)


class TestSequentialSerTable:
    def test_table_covers_fixture_catalog(self):
        from repro.apps import sequential_ser_table
        report = sequential_ser_table(eps=1e-4, max_frames=256)
        assert [r.circuit for r in report.rows] \
            == list_sequential_benchmarks()
        for row in report.rows:
            assert row.flops >= 1
            assert 0.0 <= row.max_delta <= 0.5 + 1e-12
            assert row.max_fit >= 0.0
        table = report.as_table()
        assert "seq_lfsr4" in table and "FIT" in table
        doc = report.to_dict()
        assert len(doc["rows"]) == len(report.rows)
