"""Tests for the equivalence checker and the Verilog reader."""

import pytest
from hypothesis import given, settings

from repro.circuit import (
    CircuitBuilder,
    are_equivalent,
    expand_xor,
    map_to_nand,
    rebalance_chains,
    strip_buffers,
    triplicate_gates,
)
from repro.circuits import get_benchmark, random_circuit
from repro.io import (
    VerilogFormatError,
    dumps_verilog,
    load_verilog,
    loads_verilog,
    save_verilog,
)
from tests.test_properties import random_dag_circuit


class TestEquivalence:
    def test_identical_circuits(self, full_adder_circuit):
        assert are_equivalent(full_adder_circuit, full_adder_circuit)

    def test_transforms_proved_equivalent(self, full_adder_circuit):
        for transform in (expand_xor, map_to_nand, rebalance_chains):
            other = transform(full_adder_circuit)
            result = are_equivalent(full_adder_circuit, other)
            assert result, transform.__name__

    def test_tmr_equivalent(self, full_adder_circuit):
        hardened = triplicate_gates(full_adder_circuit, ["t"])
        assert are_equivalent(full_adder_circuit, hardened)

    def test_c499_c1355_pair_proved(self):
        """The catalog's headline equivalence, proved rather than sampled."""
        assert are_equivalent(get_benchmark("c499"), get_benchmark("c1355"))

    def test_counterexample_is_real(self):
        b1 = CircuitBuilder("a1")
        a, c = b1.inputs("a", "c")
        b1.outputs(b1.and_(a, c, name="y"))
        c1 = b1.build()
        b2 = CircuitBuilder("a2")
        a, c = b2.inputs("a", "c")
        b2.outputs(b2.or_(a, c, name="y"))
        c2 = b2.build()
        result = are_equivalent(c1, c2)
        assert not result
        assert result.failing_output == "y"
        cex = result.counterexample
        assert (c1.evaluate_outputs(cex)["y"]
                != c2.evaluate_outputs(cex)["y"])

    def test_mismatched_inputs_rejected(self, full_adder_circuit,
                                        tree_circuit):
        with pytest.raises(ValueError):
            are_equivalent(full_adder_circuit, tree_circuit)

    def test_output_subset(self, full_adder_circuit):
        other = expand_xor(full_adder_circuit)
        assert are_equivalent(full_adder_circuit, other, outputs=["s"])

    def test_missing_output_rejected(self, full_adder_circuit):
        other = full_adder_circuit.cone("s")
        with pytest.raises(ValueError):
            are_equivalent(full_adder_circuit, other)


class TestVerilogReader:
    def test_writer_output_round_trips(self, full_adder_circuit):
        reloaded = loads_verilog(dumps_verilog(full_adder_circuit))
        assert are_equivalent(full_adder_circuit, reloaded)

    def test_file_round_trip(self, tmp_path, reconvergent_circuit):
        path = tmp_path / "c.v"
        save_verilog(reconvergent_circuit, path)
        reloaded = load_verilog(path)
        assert are_equivalent(reconvergent_circuit, reloaded)

    def test_constants_and_escapes(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("k")
        c.add_input("1weird")
        c.add_const("one", 1)
        c.add_gate("y", GateType.AND, ["1weird", "one"])
        c.set_output("y")
        reloaded = loads_verilog(dumps_verilog(c))
        assert set(reloaded.inputs) == {"1weird"}
        assert reloaded.evaluate_outputs({"1weird": 1})["y"] == 1

    def test_comments_stripped(self):
        text = """
        // a comment
        module m (a, y); /* block
        comment */
        input a;
        output y;
        assign y = ~(a);
        endmodule
        """
        c = loads_verilog(text)
        assert c.evaluate_outputs({"a": 1}) == {"y": 0}

    def test_mixed_operators_rejected(self):
        text = ("module m (a, b, y);\ninput a;\ninput b;\noutput y;\n"
                "assign y = a & b | a;\nendmodule\n")
        with pytest.raises(VerilogFormatError, match="mixed"):
            loads_verilog(text)

    def test_missing_endmodule(self):
        with pytest.raises(VerilogFormatError, match="endmodule"):
            loads_verilog("module m (a); input a;")

    def test_no_module(self):
        with pytest.raises(VerilogFormatError, match="module"):
            loads_verilog("assign y = a;")

    def test_undefined_reference(self):
        text = ("module m (a, y);\ninput a;\noutput y;\n"
                "assign y = a & ghost;\nendmodule\n")
        with pytest.raises(VerilogFormatError, match="ghost"):
            loads_verilog(text)


@given(random_dag_circuit(max_inputs=4, max_gates=10))
@settings(max_examples=30, deadline=None)
def test_verilog_round_trip_property(circuit):
    """Property: our Verilog writer/reader round-trips any circuit."""
    reloaded = loads_verilog(dumps_verilog(circuit))
    assert are_equivalent(circuit, reloaded)


@given(random_dag_circuit(max_inputs=4, max_gates=10))
@settings(max_examples=30, deadline=None)
def test_equivalence_reflexive_property(circuit):
    assert are_equivalent(circuit, circuit.copy())
