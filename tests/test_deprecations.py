"""The deprecated free functions still work, but warn toward the façade.

Both shims are scheduled for removal two PRs after the engine landed;
these are the only tests allowed to call them (CI runs with
``-W error::DeprecationWarning``).
"""

import pytest

from repro.circuits import c17, fig2_circuit
from repro.reliability import consolidated_curve, single_pass_reliability
from repro.reliability.single_pass import SinglePassAnalyzer


def test_single_pass_reliability_warns_and_delegates():
    circuit = fig2_circuit()
    with pytest.warns(DeprecationWarning, match="repro.analyze"):
        result = single_pass_reliability(circuit, 0.1)
    direct = SinglePassAnalyzer(circuit).run(0.1)
    assert result.per_output == pytest.approx(direct.per_output)


def test_consolidated_curve_warns_and_delegates():
    circuit = c17()
    with pytest.warns(DeprecationWarning, match="repro.sweep"):
        curve = consolidated_curve(circuit, [0.0, 0.1])
    assert curve[0.0] == pytest.approx(0.0)
    assert curve[0.1] > 0.0
