"""Tests for CircuitBuilder and the structural analysis helpers."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    CircuitError,
    GateType,
    circuit_stats,
    cone_size,
    fanout_stems,
    input_support,
    is_tree,
    node_index,
    reconvergent_gates,
    support_bitsets,
)


class TestBuilder:
    def test_inputs_and_bus(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        bus = b.input_bus("d", 3)
        assert (a, c) == ("a", "c")
        assert bus == ["d0", "d1", "d2"]

    def test_gate_conveniences_produce_expected_types(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        pairs = [
            (b.and_(a, c), GateType.AND), (b.nand(a, c), GateType.NAND),
            (b.or_(a, c), GateType.OR), (b.nor(a, c), GateType.NOR),
            (b.xor(a, c), GateType.XOR), (b.xnor(a, c), GateType.XNOR),
            (b.not_(a), GateType.NOT), (b.buf(c), GateType.BUF),
        ]
        for name, expected in pairs:
            assert b.circuit.node(name).gate_type is expected

    def test_fresh_names_unique(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        n1 = b.and_(a, c)
        n2 = b.and_(a, c)
        assert n1 != n2

    def test_named_gate(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        assert b.and_(a, c, name="myand") == "myand"

    def test_output_alias_adds_buffer(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        g = b.and_(a, c)
        b.outputs(result=g)
        circuit = b.build()
        assert circuit.outputs == ["result"]
        assert circuit.node("result").gate_type is GateType.BUF

    def test_const(self):
        b = CircuitBuilder()
        one = b.const(1)
        a = b.input("a")
        b.outputs(b.and_(one, a))
        circuit = b.build()
        assert circuit.evaluate_outputs({"a": 1}).popitem()[1] == 1

    def test_build_validates(self):
        b = CircuitBuilder()
        b.input("a")
        with pytest.raises(CircuitError):
            b.build()


class TestSupports:
    def test_node_index_is_topological(self, full_adder_circuit):
        idx = node_index(full_adder_circuit)
        for name in full_adder_circuit.topological_order():
            for fi in full_adder_circuit.fanins(name):
                assert idx[fi] < idx[name]

    def test_support_bitsets_include_self(self, full_adder_circuit):
        idx = node_index(full_adder_circuit)
        bits = support_bitsets(full_adder_circuit)
        for name in full_adder_circuit.topological_order():
            assert bits[name] & (1 << idx[name])

    def test_support_bitsets_union_of_fanins(self, full_adder_circuit):
        bits = support_bitsets(full_adder_circuit)
        idx = node_index(full_adder_circuit)
        s = bits["s"]
        assert s & (1 << idx["t"]) and s & (1 << idx["cin"])
        assert not (bits["c1"] & (1 << idx["cin"]))

    def test_input_support(self, full_adder_circuit):
        supp = input_support(full_adder_circuit)
        assert supp["s"] == {"a", "b", "cin"}
        assert supp["c1"] == {"a", "b"}
        assert supp["a"] == {"a"}


class TestStructure:
    def test_cone_size(self, full_adder_circuit):
        assert cone_size(full_adder_circuit, "s") == 2  # t and s
        assert cone_size(full_adder_circuit, "cout") == 4

    def test_fanout_stems(self, full_adder_circuit):
        stems = fanout_stems(full_adder_circuit)
        assert "t" in stems  # feeds s and c2
        assert "a" in stems and "b" in stems

    def test_reconvergent_gates(self, reconvergent_circuit):
        rec = reconvergent_gates(reconvergent_circuit)
        assert "g6" in rec  # g2 reconverges via g4/g5
        assert "g5" in rec  # i0 reaches g5 via g1->g2 and directly

    def test_is_tree(self, tree_circuit, reconvergent_circuit):
        assert is_tree(tree_circuit)
        assert not is_tree(reconvergent_circuit)

    def test_stats(self, full_adder_circuit):
        stats = circuit_stats(full_adder_circuit)
        assert stats.num_inputs == 3
        assert stats.num_outputs == 2
        assert stats.num_gates == 5
        assert stats.depth == 3
        assert stats.max_fanout == 2
        assert stats.num_fanout_stems > 0
        assert "fa" in stats.as_row()

    def test_total_output_levels(self, full_adder_circuit):
        stats = circuit_stats(full_adder_circuit)
        expected = (full_adder_circuit.level("s")
                    + full_adder_circuit.level("cout"))
        assert stats.total_output_levels == expected
