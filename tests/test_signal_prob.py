"""Tests for signal probability estimators (incl. Ercolani correlation)."""

import pytest

from repro.circuits import c17, parity_tree
from repro.probability import (
    CorrelationSignalProbability,
    correlation_signal_probabilities,
    exact_signal_probabilities,
    sampled_signal_probabilities,
)


class TestExactAndSampled:
    def test_exact_matches_known_values(self, full_adder_circuit):
        probs = exact_signal_probabilities(full_adder_circuit)
        assert probs["s"] == pytest.approx(0.5)
        assert probs["c1"] == pytest.approx(0.25)
        assert probs["cout"] == pytest.approx(0.5)

    def test_sampled_close_to_exact(self, reconvergent_circuit):
        exact = exact_signal_probabilities(reconvergent_circuit)
        sampled = sampled_signal_probabilities(reconvergent_circuit,
                                               n_patterns=1 << 16)
        for node, p in exact.items():
            assert sampled[node] == pytest.approx(p, abs=0.01)

    def test_input_probs_respected(self, full_adder_circuit):
        probs = exact_signal_probabilities(
            full_adder_circuit, input_probs={"a": 0.0})
        assert probs["c1"] == pytest.approx(0.0)


class TestCorrelationSignalProbability:
    def test_exact_on_trees(self, tree_circuit):
        exact = exact_signal_probabilities(tree_circuit)
        corr = correlation_signal_probabilities(tree_circuit)
        for node, p in exact.items():
            assert corr[node] == pytest.approx(p, abs=1e-12)

    def test_exact_on_c17(self):
        # c17's reconvergence is fully captured by pairwise coefficients.
        circuit = c17()
        exact = exact_signal_probabilities(circuit)
        corr = correlation_signal_probabilities(circuit)
        for node, p in exact.items():
            assert corr[node] == pytest.approx(p, abs=0.02)

    def test_much_better_than_independence(self, reconvergent_circuit):
        exact = exact_signal_probabilities(reconvergent_circuit)
        analysis = CorrelationSignalProbability(reconvergent_circuit)
        for node, p in exact.items():
            assert analysis.signal_probability(node) == pytest.approx(
                p, abs=0.06)

    def test_correlation_of_same_wire(self, full_adder_circuit):
        analysis = CorrelationSignalProbability(full_adder_circuit)
        p = analysis.signal_probability("t")
        assert analysis.correlation("t", "t") == pytest.approx(1.0 / p)

    def test_correlation_of_disjoint_wires(self, full_adder_circuit):
        analysis = CorrelationSignalProbability(full_adder_circuit)
        assert analysis.correlation("a", "b") == 1.0

    def test_joint_probability_pairwise_capturable(self, full_adder_circuit):
        from repro.bdd import build_node_bdds, joint_probability
        analysis = CorrelationSignalProbability(full_adder_circuit)
        bdds = build_node_bdds(full_adder_circuit)
        # cout = OR(c1, c2): c1 implies cout, a direct structural
        # correlation the pairwise method tracks through one gate level.
        exact_joint = joint_probability([bdds["c1"], bdds["cout"]], [1, 1])
        assert analysis.joint("c1", "cout") == pytest.approx(exact_joint,
                                                             abs=0.05)

    def test_three_way_xor_correlation_is_a_known_limitation(
            self, full_adder_circuit):
        # t = XOR(a,b) and c1 = AND(a,b) are *pairwise* independent of a and
        # b individually, so no pairwise coefficient can see that t=1 and
        # c1=1 are mutually exclusive.  Ercolani-style methods share this
        # blind spot; pin the behaviour so a future fix shows up.
        analysis = CorrelationSignalProbability(full_adder_circuit)
        assert analysis.correlation("t", "c1") == pytest.approx(1.0)
        assert analysis.joint("t", "c1") == pytest.approx(0.125)  # truth: 0

    def test_input_probs(self, full_adder_circuit):
        analysis = CorrelationSignalProbability(
            full_adder_circuit, input_probs={"a": 1.0, "b": 1.0})
        assert analysis.signal_probability("c1") == pytest.approx(1.0)

    def test_parity_tree_exact(self):
        circuit = parity_tree(8)
        corr = correlation_signal_probabilities(circuit)
        for node in circuit.gates:
            assert corr[node] == pytest.approx(0.5)
