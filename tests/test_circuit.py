"""Unit tests for the Circuit netlist structure."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType


def small() -> Circuit:
    c = Circuit("small")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.set_output("g2")
    return c


class TestConstruction:
    def test_basic(self):
        c = small()
        assert len(c) == 4
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["g2"]
        assert c.gates == ["g1", "g2"]
        assert c.num_gates == 2

    def test_duplicate_name_rejected(self):
        c = small()
        with pytest.raises(CircuitError):
            c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_gate("g1", GateType.OR, ["a", "b"])

    def test_empty_name_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_input("")

    def test_undefined_fanin_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_gate("g", GateType.NOT, ["missing"])

    def test_gate_type_must_be_enum(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(TypeError):
            c.add_gate("g", "not", ["a"])

    def test_output_must_exist(self):
        c = small()
        with pytest.raises(CircuitError):
            c.set_output("nope")

    def test_output_twice_rejected(self):
        c = small()
        with pytest.raises(CircuitError):
            c.set_output("g2")

    def test_constants(self):
        c = Circuit()
        c.add_const("zero", 0)
        c.add_const("one", 1)
        c.add_gate("g", GateType.OR, ["zero", "one"])
        c.set_output("g")
        assert c.evaluate({})["g"] == 1

    def test_contains_and_node_lookup(self):
        c = small()
        assert "g1" in c and "zz" not in c
        assert c.node("g1").gate_type is GateType.AND
        with pytest.raises(CircuitError):
            c.node("zz")

    def test_repr(self):
        assert "small" in repr(small())


class TestDerivedViews:
    def test_topological_order(self):
        c = small()
        order = c.topological_order()
        assert order.index("a") < order.index("g1") < order.index("g2")

    def test_topological_gates(self):
        assert small().topological_gates() == ["g1", "g2"]

    def test_levels(self):
        c = small()
        assert c.level("a") == 0
        assert c.level("g1") == 1
        assert c.level("g2") == 2
        assert c.depth == 2

    def test_fanouts(self):
        c = small()
        assert c.fanouts("a") == ("g1",)
        assert c.fanouts("g1") == ("g2",)
        assert c.fanouts("g2") == ()

    def test_fanout_count_multiplicity(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.XOR, ["a", "a"])
        c.set_output("g")
        assert c.fanouts("a") == ("g",)
        assert c.fanout_count("a") == 2

    def test_caches_invalidate_on_mutation(self):
        c = small()
        assert c.depth == 2
        c.add_gate("g3", GateType.NOT, ["g2"])
        assert c.depth == 3
        assert "g3" in c.topological_order()


class TestCones:
    def test_transitive_fanin(self):
        c = small()
        assert c.transitive_fanin(["g2"]) == ["a", "b", "g1", "g2"]
        assert c.transitive_fanin(["g2"], include_roots=False) == [
            "a", "b", "g1"]

    def test_cone_extraction(self):
        c = Circuit("two")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g1", GateType.NOT, ["a"])
        c.add_gate("g2", GateType.NOT, ["b"])
        c.set_output("g1")
        c.set_output("g2")
        cone = c.cone("g1")
        assert cone.outputs == ["g1"]
        assert "b" not in cone
        assert "g2" not in cone

    def test_copy_is_independent(self):
        c = small()
        dup = c.copy("dup")
        dup.add_gate("extra", GateType.NOT, ["g2"])
        assert "extra" not in c
        assert dup.name == "dup"


class TestEvaluate:
    def test_evaluate_all_vectors(self):
        c = small()
        for a in (0, 1):
            for b in (0, 1):
                values = c.evaluate({"a": a, "b": b})
                assert values["g1"] == (a & b)
                assert values["g2"] == (a & b) ^ 1

    def test_evaluate_outputs_only(self):
        c = small()
        assert c.evaluate_outputs({"a": 1, "b": 1}) == {"g2": 0}

    def test_missing_input_raises(self):
        c = small()
        with pytest.raises(CircuitError):
            c.evaluate({"a": 1})

    def test_values_coerced_to_bits(self):
        c = small()
        assert c.evaluate({"a": 3, "b": 1})["g1"] == 1


class TestValidate:
    def test_requires_output(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.validate()

    def test_valid_circuit_passes(self):
        small().validate()

    def test_iteration_yields_nodes(self):
        names = [n.name for n in small()]
        assert names == ["a", "b", "g1", "g2"]
