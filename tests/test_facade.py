"""Tests for the repro.analyze / repro.sweep façade (docs/engine.md)."""

import pytest

import repro
from repro.circuits import get_benchmark, list_benchmarks
from repro.engine import AnalysisEngine, set_default_engine
from repro.reliability import ResultProtocol, SinglePassAnalyzer

EPS = 0.05
# Cheap deterministic weights + a correlation locality cap so the full
# catalog (incl. the c3540/c6288 stand-ins) stays fast.
OPTS = dict(weights="sampled", n_patterns=1 << 10, level_gap=3)


@pytest.fixture(autouse=True)
def fresh_engine():
    engine = AnalysisEngine(max_sessions=32)
    set_default_engine(engine)
    yield engine
    engine.close()
    set_default_engine(None)


class TestCatalogParity:
    @pytest.mark.parametrize("name", list_benchmarks())
    def test_analyze_matches_direct_analyzer(self, name):
        via_facade = repro.analyze(name, EPS, **OPTS)
        direct = SinglePassAnalyzer(
            get_benchmark(name), weight_method="sampled",
            n_patterns=1 << 10, max_correlation_level_gap=3).run(EPS)
        assert via_facade.per_output == pytest.approx(direct.per_output)


class TestFacadeSurface:
    def test_accepts_circuit_objects(self):
        circuit = get_benchmark("c17")
        result = repro.analyze(circuit, EPS, **OPTS)
        assert set(result.per_output) == set(circuit.outputs)

    def test_accepts_netlist_path(self, tmp_path):
        path = tmp_path / "c17.bench"
        repro.save_bench(get_benchmark("c17"), path)
        result = repro.analyze(str(path), EPS, **OPTS)
        assert set(result.per_output) == {"22", "23"}

    def test_unknown_name_error(self):
        with pytest.raises(ValueError, match="neither a file nor a known"):
            repro.analyze("not-a-circuit", EPS)

    def test_sweep_matches_pointwise_analyze(self):
        eps_values = [0.01, 0.05, 0.1]
        sweep = repro.sweep("c17", eps_values, **OPTS)
        for j, eps in enumerate(eps_values):
            point = repro.analyze("c17", eps, **OPTS)
            assert sweep.point(j).per_output == \
                pytest.approx(point.per_output)

    def test_use_correlation_alias(self):
        indep = repro.analyze("c17", EPS, use_correlation=False, **OPTS)
        corr = repro.analyze("c17", EPS, correlation=True, **OPTS)
        assert not indep.used_correlation
        assert corr.used_correlation

    @pytest.mark.parametrize("method", ["single-pass", "closed-form", "mc",
                                        "consolidated", "exact"])
    def test_every_method_returns_protocol_result(self, method):
        result = repro.analyze("fig2", EPS, method=method,
                               mc_patterns=1 << 10, **OPTS)
        assert isinstance(result, ResultProtocol)
        assert result.delta(list(result.per_output)[0]) == pytest.approx(
            list(result.per_output.values())[0])
        assert isinstance(result.to_dict(), dict)

    def test_methods_roughly_agree(self):
        sp = repro.analyze("fig2", 0.1).delta()
        exact = repro.analyze("fig2", 0.1, method="exact").delta()
        assert sp == pytest.approx(exact, abs=0.02)

    def test_warm_calls_hit_session(self, fresh_engine):
        repro.analyze("c17", 0.01, **OPTS)
        before = fresh_engine.stats()["session_hits"]
        repro.analyze("c17", 0.05, **OPTS)
        assert fresh_engine.stats()["session_hits"] == before + 1
