"""Tests for the Monte Carlo fault-injection framework."""

import numpy as np
import pytest

from repro.reliability import exhaustive_exact_reliability, bdd_observabilities
from repro.sim import (
    monte_carlo_delta_curve,
    monte_carlo_observabilities,
    monte_carlo_reliability,
    validate_epsilon,
)


class TestValidation:
    def test_scalar_range(self, full_adder_circuit):
        validate_epsilon(0.3, full_adder_circuit)
        with pytest.raises(ValueError):
            validate_epsilon(0.6, full_adder_circuit)
        with pytest.raises(ValueError):
            validate_epsilon(-0.1, full_adder_circuit)

    def test_mapping_unknown_gate(self, full_adder_circuit):
        with pytest.raises(ValueError, match="unknown gate"):
            validate_epsilon({"ghost": 0.1}, full_adder_circuit)

    def test_mapping_non_gate(self, full_adder_circuit):
        with pytest.raises(ValueError, match="non-gate"):
            validate_epsilon({"a": 0.1}, full_adder_circuit)

    def test_mapping_range(self, full_adder_circuit):
        with pytest.raises(ValueError):
            validate_epsilon({"t": 0.7}, full_adder_circuit)


class TestEstimates:
    def test_matches_exact_small_circuit(self, reconvergent_circuit):
        eps = 0.1
        exact = exhaustive_exact_reliability(reconvergent_circuit, eps)
        mc = monte_carlo_reliability(reconvergent_circuit, eps,
                                     n_patterns=1 << 18, seed=1)
        for out in reconvergent_circuit.outputs:
            se = 3 * mc.standard_error(out) + 1e-3
            assert mc.per_output[out] == pytest.approx(
                exact.per_output[out], abs=se)

    def test_any_output_at_least_max_per_output(self, two_output_circuit):
        mc = monte_carlo_reliability(two_output_circuit, 0.1,
                                     n_patterns=1 << 15, seed=2)
        assert mc.any_output >= max(mc.per_output.values()) - 1e-9
        assert mc.any_output <= sum(mc.per_output.values()) + 1e-9

    def test_zero_eps_is_error_free(self, full_adder_circuit):
        mc = monte_carlo_reliability(full_adder_circuit, 0.0,
                                     n_patterns=1 << 12)
        assert all(v == 0.0 for v in mc.per_output.values())
        assert mc.any_output == 0.0

    def test_per_gate_epsilon(self, full_adder_circuit):
        # Only the final XOR is noisy: s errs with probability eps, cout never.
        mc = monte_carlo_reliability(full_adder_circuit, {"s": 0.25},
                                     n_patterns=1 << 16, seed=0)
        assert mc.per_output["s"] == pytest.approx(0.25, abs=0.01)
        assert mc.per_output["cout"] == 0.0

    def test_batching_equivalence(self, full_adder_circuit):
        a = monte_carlo_reliability(full_adder_circuit, 0.1,
                                    n_patterns=1 << 12, seed=5,
                                    batch_words=4)
        b = monte_carlo_reliability(full_adder_circuit, 0.1,
                                    n_patterns=1 << 12, seed=5,
                                    batch_words=1 << 10)
        # Different batching consumes the RNG differently, but the estimates
        # must agree statistically.
        assert a.per_output["s"] == pytest.approx(b.per_output["s"], abs=0.03)

    def test_reproducible_with_seed(self, full_adder_circuit):
        a = monte_carlo_reliability(full_adder_circuit, 0.1,
                                    n_patterns=1 << 12, seed=7)
        b = monte_carlo_reliability(full_adder_circuit, 0.1,
                                    n_patterns=1 << 12, seed=7)
        assert a.per_output == b.per_output

    def test_delta_accessor(self, full_adder_circuit, tree_circuit):
        mc = monte_carlo_reliability(tree_circuit, 0.1, n_patterns=1 << 12)
        assert mc.delta() == mc.per_output["top"]
        multi = monte_carlo_reliability(full_adder_circuit, 0.1,
                                        n_patterns=1 << 12)
        with pytest.raises(ValueError):
            multi.delta()
        assert multi.delta("s") == multi.per_output["s"]

    def test_standard_error_positive(self, tree_circuit):
        mc = monte_carlo_reliability(tree_circuit, 0.1, n_patterns=1 << 12)
        assert 0 < mc.standard_error("top") < 0.05


class TestCurve:
    def test_monotone_start(self, tree_circuit):
        curve = monte_carlo_delta_curve(tree_circuit, [0.0, 0.1, 0.3],
                                        n_patterns=1 << 14)
        assert curve[0.0] == 0.0
        assert curve[0.1] < curve[0.3]

    def test_any_output_curve(self, two_output_circuit):
        curve = monte_carlo_delta_curve(two_output_circuit, [0.1],
                                        output="*", n_patterns=1 << 13)
        assert 0 < curve[0.1] < 1


class TestObservabilities:
    def test_matches_bdd(self, reconvergent_circuit):
        exact = bdd_observabilities(reconvergent_circuit)
        sampled = monte_carlo_observabilities(reconvergent_circuit,
                                              n_patterns=1 << 15, seed=4)
        for gate, o in exact.items():
            assert sampled[gate] == pytest.approx(o, abs=0.02)

    def test_output_required_for_multi_output(self, full_adder_circuit):
        with pytest.raises(ValueError):
            monte_carlo_observabilities(full_adder_circuit)

    def test_output_gate_fully_observable(self, tree_circuit):
        obs = monte_carlo_observabilities(tree_circuit, n_patterns=1 << 12)
        assert obs["top"] == 1.0
