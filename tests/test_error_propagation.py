"""Tests for the Table-1 error-propagation math (paper Sec. 4)."""

import pytest

from repro.circuit import GateType, truth_table
from repro.probability import (
    EVENT_0TO1,
    EVENT_1TO0,
    ErrorProbability,
    combine_with_local_failure,
    transition_probability,
    weighted_error_components,
)


def and_truth():
    return truth_table(GateType.AND, 2)


class TestErrorProbability:
    def test_event_access(self):
        ep = ErrorProbability(0.1, 0.2)
        assert ep.of_event(EVENT_0TO1) == 0.1
        assert ep.of_event(EVENT_1TO0) == 0.2

    def test_total(self):
        ep = ErrorProbability(0.1, 0.3)
        assert ep.total(0.25) == pytest.approx(0.75 * 0.1 + 0.25 * 0.3)


class TestTable1ForAnd:
    """Reproduce the paper's Table 1 expressions entry by entry."""

    def setup_method(self):
        self.pi = ErrorProbability(p01=0.10, p10=0.20)  # input i
        self.pj = ErrorProbability(p01=0.05, p10=0.15)  # input j
        self.errors = {"i": self.pi, "j": self.pj}
        # Weight vector indexed by (j, i)? No: bit t = fanin t; order (i, j).
        self.weights = [0.4, 0.3, 0.2, 0.1]  # W00, W10, W01, W11 as bits i,j

    def test_pw0_matches_table1(self):
        pw0, w0, pw1, w1 = weighted_error_components(
            and_truth(), self.weights, ("i", "j"), self.errors)
        w00, w10, w01, w11 = self.weights
        expected = (
            w00 * self.pi.p01 * self.pj.p01
            + w10 * self.pi.p01 * (1 - self.pj.p10)  # wait: bit0=i
        )
        # Careful with ordering: index v has bit0 = i, bit1 = j.
        # v=1 means i=1, j=0 (paper's "10" row with order ij reversed).
        expected = (
            w00 * self.pi.p01 * self.pj.p01            # v=0: both flip
            + w10 * (1 - self.pi.p10) * self.pj.p01    # v=1: i=1 stays, j flips
            + w01 * self.pi.p01 * (1 - self.pj.p10)    # v=2: i flips, j=1 stays
        )
        assert pw0 == pytest.approx(expected)
        assert w0 == pytest.approx(w00 + w10 + w01)

    def test_pw1_matches_table1(self):
        pw0, w0, pw1, w1 = weighted_error_components(
            and_truth(), self.weights, ("i", "j"), self.errors)
        w11 = self.weights[3]
        expected = w11 * (self.pi.p10 + self.pj.p10
                          - self.pi.p10 * self.pj.p10)
        assert pw1 == pytest.approx(expected)
        assert w1 == pytest.approx(w11)

    def test_or_gate_symmetry(self):
        # For OR, the single-row side is the 0 side (only 00 gives 0).
        or_truth = truth_table(GateType.OR, 2)
        pw0, w0, pw1, w1 = weighted_error_components(
            or_truth, self.weights, ("i", "j"), self.errors)
        w00 = self.weights[0]
        expected_pw0 = w00 * (self.pi.p01 + self.pj.p01
                              - self.pi.p01 * self.pj.p01)
        assert pw0 == pytest.approx(expected_pw0)
        assert w0 == pytest.approx(w00)

    def test_inverter(self):
        not_truth = truth_table(GateType.NOT, 1)
        errors = {"i": self.pi}
        pw0, w0, pw1, w1 = weighted_error_components(
            not_truth, [0.7, 0.3], ("i",), errors)
        # Output 0 <=> input 1 (weight 0.3): 0->1 error at output needs the
        # input to fall 1->0.
        assert pw0 == pytest.approx(0.3 * self.pi.p10)
        assert pw1 == pytest.approx(0.7 * self.pi.p01)

    def test_error_free_inputs_give_zero(self):
        errors = {"i": ErrorProbability(), "j": ErrorProbability()}
        pw0, _, pw1, _ = weighted_error_components(
            and_truth(), self.weights, ("i", "j"), errors)
        assert pw0 == 0.0 and pw1 == 0.0


class TestTransitionProbability:
    def test_single_flip(self):
        errors = {"i": ErrorProbability(0.1, 0.2),
                  "j": ErrorProbability(0.05, 0.15)}
        # v=01 (i=1,j=0) -> v'=11: j flips 0->1, i stays 1.
        p = transition_probability(0b01, 0b11, ("i", "j"), errors)
        assert p == pytest.approx((1 - 0.2) * 0.05)

    def test_double_flip(self):
        errors = {"i": ErrorProbability(0.1, 0.2),
                  "j": ErrorProbability(0.05, 0.15)}
        p = transition_probability(0b00, 0b11, ("i", "j"), errors)
        assert p == pytest.approx(0.1 * 0.05)

    def test_identity_transition(self):
        errors = {"i": ErrorProbability(0.1, 0.2)}
        p = transition_probability(0b1, 0b1, ("i",), errors)
        assert p == pytest.approx(1 - 0.2)


class TestCombineWithLocalFailure:
    def test_paper_formula(self):
        # Pr(g01) = (1-e) r0 + e (1 - r0)
        ep = combine_with_local_failure(pw0=0.06, w0=0.3, pw1=0.02, w1=0.7,
                                        eps=0.1)
        r0, r1 = 0.06 / 0.3, 0.02 / 0.7
        assert ep.p01 == pytest.approx(0.9 * r0 + 0.1 * (1 - r0))
        assert ep.p10 == pytest.approx(0.9 * r1 + 0.1 * (1 - r1))

    def test_noise_free_gate(self):
        ep = combine_with_local_failure(0.06, 0.3, 0.02, 0.7, eps=0.0)
        assert ep.p01 == pytest.approx(0.2)
        assert ep.p10 == pytest.approx(0.02 / 0.7)

    def test_pure_local_noise(self):
        ep = combine_with_local_failure(0.0, 0.5, 0.0, 0.5, eps=0.25)
        assert ep.p01 == 0.25 and ep.p10 == 0.25

    def test_degenerate_side(self):
        # Output never 0 error-free: the 0-side defaults to pure eps.
        ep = combine_with_local_failure(0.0, 0.0, 0.1, 1.0, eps=0.2)
        assert ep.p01 == pytest.approx(0.2)

    def test_fully_noisy_gate_is_half(self):
        ep = combine_with_local_failure(0.1, 0.5, 0.1, 0.5, eps=0.5)
        assert ep.p01 == pytest.approx(0.5)
        assert ep.p10 == pytest.approx(0.5)

    def test_ratio_clamped(self):
        ep = combine_with_local_failure(0.9, 0.3, 0.0, 0.7, eps=0.0)
        assert ep.p01 == 1.0


class TestTransitionCacheBound:
    """The per-truth-table memo caches must not grow without bound."""

    def _distinct_truths(self, count, k=4, seed=0):
        import random

        rng = random.Random(seed)
        seen = set()
        while len(seen) < count:
            seen.add(tuple(rng.randrange(2) for _ in range(1 << k)))
        return sorted(seen)

    def test_transition_table_cache_capped(self):
        from repro.probability.error_propagation import (
            TRANSITION_CACHE_MAX,
            _TRANSITION_CACHE,
            _transition_table,
        )

        truths = self._distinct_truths(TRANSITION_CACHE_MAX + 100)
        for truth in truths:
            _transition_table(truth, 4)
        assert len(_TRANSITION_CACHE) <= TRANSITION_CACHE_MAX
        # Most-recent entries survive; the oldest were evicted (LRU).
        assert _TRANSITION_CACHE.get((truths[-1], 4)) is not None
        assert _TRANSITION_CACHE.get((truths[0], 4)) is None

    def test_lowering_cache_capped(self):
        from repro.probability.error_propagation import (
            TRANSITION_CACHE_MAX,
            _LOWERING_CACHE,
            transition_lowering,
        )

        truths = self._distinct_truths(TRANSITION_CACHE_MAX + 100, seed=1)
        for truth in truths:
            transition_lowering(truth, 4)
        assert len(_LOWERING_CACHE) <= TRANSITION_CACHE_MAX
        assert _LOWERING_CACHE.get((truths[-1], 4)) is not None

    def test_repeated_analyses_do_not_grow_cache(self):
        from repro.circuits import random_circuit
        from repro.probability.error_propagation import (
            TRANSITION_CACHE_MAX,
            _TRANSITION_CACHE,
        )
        from repro.reliability import SinglePassAnalyzer

        for seed in range(6):
            circuit = random_circuit(n_inputs=4, n_gates=10, n_outputs=1,
                                     seed=seed)
            analyzer = SinglePassAnalyzer(circuit,
                                          weight_method="exhaustive",
                                          compiled="off",
                                          use_correlation=False)
            analyzer.run(0.05)
        assert len(_TRANSITION_CACHE) <= TRANSITION_CACHE_MAX
