"""Tests for the persistent AnalysisEngine (docs/engine.md).

Covers the session registry (hit/miss/eviction), request coalescing,
the timeout fallback ladder, the serve loop, and the envelope/CLI
byte-match guarantee.
"""

import io
import json

import pytest

from repro.cli import main
from repro.engine import AnalysisEngine, AnalysisRequest, run_batch, \
    serve_stream
from repro.probability import ErrorProbability

OPTS = {"weights": "sampled", "n_patterns": 1 << 10}


@pytest.fixture()
def engine():
    with AnalysisEngine(max_sessions=4) as eng:
        yield eng


class TestSessionRegistry:
    def test_hit_miss_counters(self, engine):
        engine.analyze("c17", 0.05, **OPTS)
        assert engine.stats()["session_misses"] == 1
        engine.analyze("c17", 0.1, **OPTS)
        stats = engine.stats()
        assert stats["session_hits"] == 1
        assert stats["session_misses"] == 1
        assert stats["sessions"] == 1

    def test_distinct_config_distinct_session(self, engine):
        engine.analyze("c17", 0.05, **OPTS)
        engine.analyze("c17", 0.05, weights="sampled", n_patterns=1 << 11)
        assert engine.stats()["sessions"] == 2
        assert engine.stats()["session_misses"] == 2

    def test_lru_eviction(self):
        with AnalysisEngine(max_sessions=2) as engine:
            for name in ("c17", "fig2", "fig1a"):
                engine.analyze(name, 0.05, **OPTS)
            stats = engine.stats()
            assert stats["sessions"] == 2
            assert stats["session_misses"] == 3
            # c17 was evicted: analyzing it again is a miss, not a hit.
            engine.analyze("c17", 0.05, **OPTS)
            assert engine.stats()["session_misses"] == 4

    def test_transient_options_bypass_registry(self, engine):
        engine.analyze(
            "c17", 0.05,
            input_errors={"1": ErrorProbability(p01=0.1, p10=0.1)},
            **OPTS)
        assert engine.stats()["sessions"] == 0


class TestSubmit:
    def test_envelope_shape(self, engine):
        resp = engine.submit({"id": 7, "op": "analyze", "circuit": "c17",
                              "eps": 0.05, "options": OPTS})
        env = resp.to_dict()
        assert env["ok"] and env["id"] == 7
        assert env["circuit"] == "c17"
        assert env["method"].startswith("single-pass")
        assert env["result"]["command"] == "analyze"
        assert env["elapsed_s"] > 0
        assert env["fallbacks"] == [] and not env["timed_out"]

    def test_bad_request_is_error_envelope(self, engine):
        env = engine.submit({"op": "florp", "circuit": "c17"}).to_dict()
        assert not env["ok"]
        assert "unknown op" in env["error"]

    def test_unknown_circuit_is_error_envelope(self, engine):
        env = engine.submit({"op": "analyze", "circuit": "zork"}).to_dict()
        assert not env["ok"]
        assert "neither a file nor a known benchmark" in env["error"]

    @pytest.mark.parametrize("op,method", [
        ("analyze", "mc"), ("analyze", "closed-form"),
        ("analyze", "consolidated"), ("closed-form", "single-pass"),
        ("curve", "single-pass")])
    def test_other_ops_succeed(self, engine, op, method):
        req = AnalysisRequest(circuit="fig2", op=op, eps=0.1, method=method,
                              options={"mc_patterns": 1 << 10, **OPTS})
        env = engine.submit(req).to_dict()
        assert env["ok"], env.get("error")
        assert env["result"]["circuit"] == "fig2"


class TestCoalescing:
    def test_same_session_requests_coalesce(self, engine):
        reqs = [{"op": "analyze", "circuit": "c17", "eps": e,
                 "options": OPTS} for e in (0.01, 0.05, 0.1)]
        responses = engine.submit_many(reqs)
        assert all(r.ok for r in responses)
        assert [r.coalesced for r in responses] == [3, 3, 3]
        # Parity: identical deltas to running each request alone.
        for req, batched in zip(reqs, responses):
            solo = engine.submit(req)
            assert solo.coalesced == 0
            assert batched.result["points"] == solo.result["points"]

    def test_mixed_circuits_coalesce_per_session(self, engine):
        reqs = [{"op": "analyze", "circuit": "c17", "eps": 0.01,
                 "options": OPTS},
                {"op": "analyze", "circuit": "fig2", "eps": 0.05,
                 "options": OPTS},
                {"op": "analyze", "circuit": "c17", "eps": 0.1,
                 "options": OPTS}]
        responses = engine.submit_many(reqs)
        assert [r.coalesced for r in responses] == [2, 0, 2]
        assert [r.circuit for r in responses] == ["c17", "fig2", "c17"]

    def test_timeout_requests_never_coalesce(self, engine):
        reqs = [{"op": "analyze", "circuit": "c17", "eps": 0.01,
                 "timeout_s": 60, "options": OPTS},
                {"op": "analyze", "circuit": "c17", "eps": 0.05,
                 "timeout_s": 60, "options": OPTS}]
        responses = engine.submit_many(reqs)
        assert all(r.ok for r in responses)
        assert [r.coalesced for r in responses] == [0, 0]


class TestTimeoutLadder:
    def test_expired_deadline_falls_back_to_closed_form(self, engine):
        env = engine.submit({"op": "analyze", "circuit": "c17",
                             "eps": 0.05, "timeout_s": 0,
                             "options": OPTS}).to_dict()
        assert env["ok"]
        assert env["timed_out"]
        assert env["method"] == "closed-form"
        assert env["fallbacks"] == [{"from": "single-pass-compiled",
                                     "to": "closed-form",
                                     "reason": "timeout"}]
        for point in env["result"]["points"]:
            for delta in point["per_output"].values():
                assert 0.0 <= delta <= 1.0

    def test_generous_deadline_stays_on_compiled(self, engine):
        env = engine.submit({"op": "analyze", "circuit": "c17",
                             "eps": 0.05, "timeout_s": 120,
                             "options": OPTS}).to_dict()
        assert env["method"] == "single-pass-compiled"
        assert not env["timed_out"]


class TestServeLoop:
    def test_pipe_smoke(self, engine):
        lines = [
            json.dumps({"id": 1, "op": "analyze", "circuit": "c17",
                        "eps": [0.01, 0.05], "options": OPTS}),
            "",
            json.dumps({"op": "ping"}),
            "not json at all {",
            json.dumps({"op": "analyze", "circuit": "zork"}),
            json.dumps({"id": "bye", "op": "shutdown"}),
            json.dumps({"op": "analyze", "circuit": "c17"}),  # after stop
        ]
        out = io.StringIO()
        served = serve_stream(engine, io.StringIO("\n".join(lines) + "\n"),
                              out)
        envelopes = [json.loads(l) for l in out.getvalue().splitlines()]
        assert served == 5  # blank skipped, post-shutdown line unread
        ok_flags = [e["ok"] for e in envelopes]
        assert ok_flags == [True, True, False, False, True]
        assert envelopes[0]["id"] == 1
        assert len(envelopes[0]["result"]["points"]) == 2
        assert "uptime_s" in envelopes[1]  # ping: cheap liveness echo
        assert "stats" not in envelopes[1]
        assert "invalid JSON" in envelopes[2]["error"]
        assert envelopes[4]["op"] == "shutdown"

    def test_batch_skips_comments_counts_failures(self, engine, tmp_path):
        lines = [
            "# a comment",
            json.dumps({"op": "analyze", "circuit": "c17", "eps": 0.05,
                        "options": OPTS}),
            json.dumps({"op": "analyze", "circuit": "zork"}),
            "{broken",
        ]
        out = io.StringIO()
        failures = run_batch(engine, lines, out)
        envelopes = [json.loads(l) for l in out.getvalue().splitlines()]
        assert failures == 2
        assert len(envelopes) == 3  # the comment produces no output line
        assert [e["ok"] for e in envelopes] == [True, False, False]
        assert "line 4" in envelopes[2]["error"]


class TestCliByteMatch:
    def test_serve_result_matches_one_shot_json(self, engine, capsys):
        assert main(["analyze", "c17", "--eps", "0.01,0.05", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        doc.pop("elapsed_s")
        env = engine.submit({"op": "analyze", "circuit": "c17",
                             "eps": [0.01, 0.05]}).to_dict()
        assert json.dumps(env["result"]) == json.dumps(doc)


class TestFanOut:
    def test_lanes_match_local_execution(self):
        reqs = [{"op": "analyze", "circuit": name, "eps": [0.01, 0.05],
                 "options": OPTS} for name in ("c17", "fig2", "fig1a")]
        with AnalysisEngine() as local_engine:
            local = [r.to_dict() for r in local_engine.submit_many(reqs)]
        with AnalysisEngine(jobs=2) as fan_engine:
            fanned = [r.to_dict() for r in fan_engine.submit_many(reqs)]
            assert fan_engine.stats()["lanes"] == 2
        for a, b in zip(local, fanned):
            assert a["ok"] and b["ok"]
            assert a["result"] == b["result"]
