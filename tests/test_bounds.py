"""Tests for the guaranteed signal-probability bounds."""

import pytest
from hypothesis import given, settings

from repro.circuits import c17, parity_tree, random_circuit
from repro.probability import (
    Interval,
    bound_report,
    exact_signal_probabilities,
    signal_probability_bounds,
)
from tests.test_properties import random_dag_circuit


class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(0.7, 0.3)
        with pytest.raises(ValueError):
            Interval(-0.1, 0.5)

    def test_complement(self):
        iv = Interval(0.2, 0.6).complement()
        assert iv.lo == pytest.approx(0.4)
        assert iv.hi == pytest.approx(0.8)

    def test_width_and_point(self):
        assert Interval(0.25, 0.75).width == 0.5
        assert Interval(0.5, 0.5).is_point

    def test_contains(self):
        assert Interval(0.2, 0.4).contains(0.3)
        assert not Interval(0.2, 0.4).contains(0.5)


class TestSoundness:
    def test_contains_exact_on_c17(self):
        circuit = c17()
        bounds = signal_probability_bounds(circuit)
        exact = exact_signal_probabilities(circuit)
        for node, p in exact.items():
            assert bounds[node].contains(p), node

    def test_point_intervals_on_trees(self, tree_circuit):
        bounds = signal_probability_bounds(tree_circuit)
        exact = exact_signal_probabilities(tree_circuit)
        for node, p in exact.items():
            assert bounds[node].is_point
            assert bounds[node].lo == pytest.approx(p)

    def test_parity_tree_exact(self):
        circuit = parity_tree(8)
        bounds = signal_probability_bounds(circuit)
        assert bounds[circuit.outputs[0]].is_point

    def test_reconvergence_widens(self, reconvergent_circuit):
        bounds = signal_probability_bounds(reconvergent_circuit)
        assert bounds["g6"].width > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_sound(self, seed):
        circuit = random_circuit(6, 25, 3, seed=seed)
        bounds = signal_probability_bounds(circuit)
        exact = exact_signal_probabilities(circuit)
        for node, p in exact.items():
            assert bounds[node].contains(p), (seed, node)

    def test_input_probs_respected(self, full_adder_circuit):
        bounds = signal_probability_bounds(full_adder_circuit,
                                           input_probs={"a": 1.0, "b": 1.0})
        assert bounds["c1"].lo == pytest.approx(1.0)

    def test_constants(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("k")
        c.add_const("one", 1)
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.set_output("y")
        bounds = signal_probability_bounds(c)
        assert bounds["y"].lo == pytest.approx(0.5)
        assert bounds["y"].hi == pytest.approx(0.5)

    def test_report(self, two_output_circuit):
        report = bound_report(two_output_circuit)
        assert set(report) == {"y1", "y2"}
        for lo, hi, width in report.values():
            assert 0 <= lo <= hi <= 1
            assert width == pytest.approx(hi - lo)


@given(random_dag_circuit(max_gates=12))
@settings(max_examples=50, deadline=None)
def test_bounds_always_contain_exact(circuit):
    """Property: on arbitrary DAGs the interval brackets the truth."""
    bounds = signal_probability_bounds(circuit)
    exact = exact_signal_probabilities(circuit)
    for node, p in exact.items():
        assert bounds[node].contains(p), node
