"""Tests for ``repro serve --tcp``: concurrency and wire hardening.

Each test boots a real ``serve_tcp`` listener on an ephemeral port in a
daemon thread and talks to it over plain sockets, covering concurrent
clients against the shared engine, malformed JSON, the 1 MiB request-line
cap, per-connection shutdown, and edit sessions shared across
connections.
"""

import json
import socket
import threading

import pytest

from repro.engine import AnalysisEngine, serve_tcp
from repro.engine.serve import MAX_REQUEST_BYTES

OPTS = {"weights": "sampled", "n_patterns": 1 << 10}


@pytest.fixture()
def tcp_port():
    """A live server's port; the engine closes with the test."""
    engine = AnalysisEngine(max_sessions=8)
    ready = threading.Event()
    box = {}

    def on_ready(port):
        box["port"] = port
        ready.set()

    thread = threading.Thread(
        target=serve_tcp, args=(engine, "127.0.0.1", 0),
        kwargs={"ready_callback": on_ready}, daemon=True)
    thread.start()
    assert ready.wait(10), "server never came up"
    yield box["port"]
    engine.close()


def _connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    return sock, sock.makefile("rwb")


def _rpc(stream, obj):
    stream.write((json.dumps(obj) + "\n").encode())
    stream.flush()
    line = stream.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


class TestTcpServe:
    def test_single_client_roundtrip(self, tcp_port):
        sock, stream = _connect(tcp_port)
        try:
            env = _rpc(stream, {"id": 1, "op": "analyze", "circuit": "c17",
                                "eps": [0.01, 0.05], "options": OPTS})
            assert env["ok"] and env["id"] == 1
            assert len(env["result"]["points"]) == 2
            assert _rpc(stream, {"op": "ping"})["ok"]
        finally:
            sock.close()

    def test_concurrent_clients(self, tcp_port):
        circuits = ["c17", "fig2", "fig1a", "b9"]
        results = {}
        errors = []

        def client(idx, name):
            try:
                sock, stream = _connect(tcp_port)
                try:
                    envs = [_rpc(stream, {"id": f"{idx}-{i}",
                                          "op": "analyze", "circuit": name,
                                          "eps": eps, "options": OPTS})
                            for i, eps in enumerate((0.01, 0.05, 0.1))]
                    results[idx] = envs
                finally:
                    sock.close()
            except Exception as exc:  # surfaced in the main thread
                errors.append((idx, exc))

        threads = [threading.Thread(target=client, args=(i, name))
                   for i, name in enumerate(circuits)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert len(results) == len(circuits)
        for idx, envs in results.items():
            assert [e["ok"] for e in envs] == [True, True, True]
            assert [e["id"] for e in envs] == [f"{idx}-{i}"
                                               for i in range(3)]

    def test_malformed_json_keeps_connection(self, tcp_port):
        sock, stream = _connect(tcp_port)
        try:
            stream.write(b"this is { not json\n")
            stream.flush()
            env = json.loads(stream.readline())
            assert not env["ok"] and "invalid JSON" in env["error"]
            # The stream resynchronizes on the next newline-framed request.
            assert _rpc(stream, {"op": "ping"})["ok"]
        finally:
            sock.close()

    def test_bad_request_shape_keeps_connection(self, tcp_port):
        sock, stream = _connect(tcp_port)
        try:
            env = _rpc(stream, {"op": "analyze"})  # no circuit, no session
            assert not env["ok"] and "circuit" in env["error"]
            assert _rpc(stream, {"op": "ping"})["ok"]
        finally:
            sock.close()

    def test_oversized_line_answers_then_closes(self, tcp_port):
        sock, stream = _connect(tcp_port)
        try:
            flood = b'{"op": "analyze", "circuit": "' \
                + b"x" * (MAX_REQUEST_BYTES + 10) + b'"}\n'
            stream.write(flood)
            stream.flush()
            env = json.loads(stream.readline())
            assert not env["ok"] and "too long" in env["error"]
            # The connection is closed: the flood cannot be resynced.
            assert stream.readline() == b""
        finally:
            sock.close()

    def test_shutdown_closes_only_that_connection(self, tcp_port):
        sock1, stream1 = _connect(tcp_port)
        sock2, stream2 = _connect(tcp_port)
        try:
            env = _rpc(stream1, {"op": "shutdown"})
            assert env["ok"] and env["op"] == "shutdown"
            assert stream1.readline() == b""
            # The listener and the other client are unaffected.
            assert _rpc(stream2, {"op": "ping"})["ok"]
        finally:
            sock1.close()
            sock2.close()

    def test_concurrent_stats_and_metrics_clients(self, tcp_port):
        """stats/metrics ops stay consistent under concurrent clients."""
        stop = threading.Event()
        errors = []

        def analyzer(name):
            try:
                sock, stream = _connect(tcp_port)
                try:
                    for eps in (0.01, 0.05, 0.1):
                        env = _rpc(stream, {"op": "analyze",
                                            "circuit": name, "eps": eps,
                                            "options": OPTS})
                        assert env["ok"], env.get("error")
                        assert "telemetry" in env
                finally:
                    sock.close()
            except Exception as exc:
                errors.append(("analyze", exc))

        def poller(op):
            try:
                sock, stream = _connect(tcp_port)
                try:
                    while not stop.is_set():
                        env = _rpc(stream, {"op": op})
                        assert env["ok"] and env["op"] == op
                        if op == "stats":
                            assert env["stats"]["uptime_s"] >= 0.0
                            assert "rolling" in env["stats"]
                        else:
                            assert "# TYPE" in env["exposition"]
                finally:
                    sock.close()
            except Exception as exc:
                errors.append((op, exc))

        analyzers = [threading.Thread(target=analyzer, args=(name,))
                     for name in ("c17", "fig2")]
        pollers = [threading.Thread(target=poller, args=(op,))
                   for op in ("stats", "metrics")]
        for t in analyzers + pollers:
            t.start()
        for t in analyzers:
            t.join(timeout=120)
        stop.set()
        for t in pollers:
            t.join(timeout=30)
        assert not errors, errors

        # Post-run totals reflect the analyzers' six requests.
        sock, stream = _connect(tcp_port)
        try:
            stats = _rpc(stream, {"op": "stats"})["stats"]
            assert stats["rolling"]["ops"]["analyze"]["count"] == 6
            exposition = _rpc(stream, {"op": "metrics"})["exposition"]
            assert ('repro_engine_requests_total{op="analyze"} 6'
                    in exposition)
        finally:
            sock.close()

    def test_edit_session_shared_across_connections(self, tcp_port):
        sock1, stream1 = _connect(tcp_port)
        try:
            env = _rpc(stream1, {
                "op": "edit", "session": "shared", "circuit": "c17",
                "edits": [{"kind": "set_eps", "eps": 0.08}],
                "options": OPTS})
            assert env["ok"], env.get("error")
        finally:
            sock1.close()
        sock2, stream2 = _connect(tcp_port)
        try:
            env = _rpc(stream2, {"op": "reanalyze", "session": "shared"})
            assert env["ok"], env.get("error")
            assert env["result"]["points"][0]["eps"]["default"] == 0.08
        finally:
            sock2.close()
