"""Edge-case and robustness tests across the library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.circuit import Circuit, CircuitBuilder, GateType
from repro.reliability import (
    ObservabilityModel,
    SinglePassAnalyzer,
    exhaustive_exact_reliability,
)
from repro.sim import monte_carlo_reliability
from tests.test_properties import random_tree_circuit


def single_gate_circuit(gate_type=GateType.AND):
    b = CircuitBuilder("one")
    a, c = b.inputs("a", "c")
    b.outputs(b.gate(gate_type, a, c, name="y"))
    return b.build()


class TestDegenerateCircuits:
    def test_single_buffer(self):
        b = CircuitBuilder("wire")
        a = b.input("a")
        b.outputs(b.buf(a, name="y"))
        circuit = b.build()
        for eps in (0.0, 0.25, 0.5):
            assert analyze(circuit, eps).delta() == \
                pytest.approx(eps)

    def test_constant_output_circuit(self):
        c = Circuit("const")
        c.add_input("a")
        c.add_const("one", 1)
        c.add_gate("y", GateType.OR, ["a", "one"])  # always 1
        c.set_output("y")
        result = analyze(c, 0.1)
        # Error-free value is always 1: delta = Pr(1->0) = eps.
        assert result.delta() == pytest.approx(0.1)
        exact = exhaustive_exact_reliability(c, 0.1)
        assert result.delta() == pytest.approx(exact.delta(), abs=1e-12)

    def test_duplicate_fanin_gate(self):
        c = Circuit("dup")
        c.add_input("a")
        c.add_gate("y", GateType.XOR, ["a", "a"])  # always 0
        c.set_output("y")
        result = analyze(c, 0.2)
        exact = exhaustive_exact_reliability(c, 0.2)
        assert result.delta() == pytest.approx(exact.delta(), abs=1e-9)

    def test_output_is_also_internal_node(self, full_adder_circuit):
        # 't' feeds other logic; also declare it an output.
        circuit = full_adder_circuit.copy()
        circuit.set_output("t")
        result = analyze(circuit, 0.1)
        assert set(result.per_output) == {"s", "cout", "t"}
        mc = monte_carlo_reliability(circuit, 0.1, n_patterns=1 << 15)
        assert result.per_output["t"] == pytest.approx(
            mc.per_output["t"], abs=0.02)

    def test_deep_inverter_chain_saturates(self):
        b = CircuitBuilder("chain")
        a = b.input("a")
        node = a
        for _ in range(100):
            node = b.not_(node)
        b.outputs(b.buf(node, name="y"))
        circuit = b.build()
        # Long noisy chain: delta -> 1/2 from any per-gate eps.
        delta = analyze(circuit, 0.1).delta()
        assert delta == pytest.approx(0.5, abs=1e-6)

    def test_wide_gate_in_single_pass(self):
        c = Circuit("wide")
        for pi in "abcde":
            c.add_input(pi)
        c.add_gate("y", GateType.NOR, list("abcde"))
        c.set_output("y")
        sp = analyze(c, 0.15).delta()
        exact = exhaustive_exact_reliability(c, 0.15).delta()
        assert sp == pytest.approx(exact, abs=1e-12)


class TestEpsilonBoundaries:
    @pytest.mark.parametrize("gate_type", [GateType.AND, GateType.XOR,
                                           GateType.NOR])
    def test_fully_noisy_single_gate(self, gate_type):
        circuit = single_gate_circuit(gate_type)
        assert analyze(circuit, 0.5).delta() == \
            pytest.approx(0.5)

    def test_eps_exactly_half_everywhere(self, reconvergent_circuit):
        result = analyze(reconvergent_circuit, 0.5)
        assert result.delta() == pytest.approx(0.5, abs=1e-9)

    def test_observability_model_at_bounds(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        assert model.delta(0.0) == 0.0
        assert 0.0 < model.delta(0.5) <= 0.5


class TestMonotonicity:
    @given(random_tree_circuit(max_leaves=6))
    @settings(max_examples=20, deadline=None)
    def test_delta_nondecreasing_in_eps_on_trees(self, circuit):
        """Monotone while delta stays below 1/2.

        Global monotonicity in eps is *false*: with inverting gates the
        error probability can exceed 1/2 at moderate eps (e.g. the fully
        covering perturbations of an AND's 11-vector give a flip
        probability 1-(1-p)(1-q) > 1/2), while eps = 0.5 always pins the
        output to exactly 1/2 — so curves that cross 1/2 come back down.
        The true invariants: delta is exactly 0 at eps=0, exactly 1/2 at
        eps=1/2, and non-decreasing until it first reaches 1/2.
        """
        analyzer = SinglePassAnalyzer(circuit)
        eps_points = (0.0, 0.05, 0.15, 0.3, 0.5)
        values = [analyzer.run(e).delta() for e in eps_points]
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(0.5, abs=1e-9)
        for a, b in zip(values, values[1:]):
            if a >= 0.5:
                break
            assert b >= a - 1e-12

    @given(st.floats(0.001, 0.4))
    @settings(max_examples=20, deadline=None)
    def test_hardening_one_gate_never_hurts_on_a_tree(self, eps):
        b = CircuitBuilder("t")
        xs = b.inputs(*"abcd")
        top = b.or_(b.and_(xs[0], xs[1]), b.nand(xs[2], xs[3]), name="top")
        b.outputs("top")
        circuit = b.build()
        analyzer = SinglePassAnalyzer(circuit)
        base_eps = {g: eps for g in circuit.topological_gates()}
        base = analyzer.run(base_eps).delta()
        for gate in circuit.topological_gates():
            hardened = dict(base_eps)
            hardened[gate] = eps / 2
            assert analyzer.run(hardened).delta() <= base + 1e-12


class TestAnalyzerReuse:
    def test_analyzer_runs_are_independent(self, reconvergent_circuit):
        analyzer = SinglePassAnalyzer(reconvergent_circuit)
        first = analyzer.run(0.1).delta()
        analyzer.run(0.4)
        again = analyzer.run(0.1).delta()
        assert first == pytest.approx(again, abs=1e-15)

    def test_independent_analyzers_agree(self, reconvergent_circuit):
        a = SinglePassAnalyzer(reconvergent_circuit, seed=0)
        b = SinglePassAnalyzer(reconvergent_circuit, seed=0)
        assert a.run(0.2).delta() == pytest.approx(b.run(0.2).delta())
