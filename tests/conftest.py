"""Shared fixtures: small reference circuits used across the test suite."""

import pytest

from repro.circuit import Circuit, CircuitBuilder, GateType


@pytest.fixture
def full_adder_circuit() -> Circuit:
    """1-bit full adder: 5 gates, 2 outputs, mild reconvergence."""
    b = CircuitBuilder("fa")
    a, bb, cin = b.inputs("a", "b", "cin")
    t = b.xor(a, bb, name="t")
    s = b.xor(t, cin, name="s")
    c1 = b.and_(a, bb, name="c1")
    c2 = b.and_(t, cin, name="c2")
    b.or_(c1, c2, name="cout")
    b.outputs("s", "cout")
    return b.build()


@pytest.fixture
def tree_circuit() -> Circuit:
    """Fanout-free circuit: single-pass analysis must be exact on it."""
    b = CircuitBuilder("tree")
    x = b.inputs(*[f"x{i}" for i in range(6)])
    a1 = b.and_(x[0], x[1])
    o1 = b.or_(x[2], x[3])
    n1 = b.nand(x[4], x[5])
    top = b.nor(b.xor(a1, o1), n1, name="top")
    b.outputs(top)
    return b.build()


@pytest.fixture
def reconvergent_circuit() -> Circuit:
    """Small circuit with a fanout stem reconverging two levels later."""
    b = CircuitBuilder("reconv")
    i0, i1, i2, i3 = b.inputs("i0", "i1", "i2", "i3")
    g1 = b.and_(i0, i1, name="g1")
    g2 = b.or_(g1, i2, name="g2")
    g4 = b.and_(g2, i3, name="g4")
    g5 = b.nand(g2, i0, name="g5")
    b.xor(g4, g5, name="g6")
    b.outputs("g6")
    return b.build()


@pytest.fixture
def two_output_circuit() -> Circuit:
    """Two outputs sharing logic (for consolidation tests)."""
    b = CircuitBuilder("duo")
    a, bb, c = b.inputs("a", "b", "c")
    shared = b.xor(a, bb, name="shared")
    b.and_(shared, c, name="y1")
    b.or_(shared, c, name="y2")
    b.outputs("y1", "y2")
    return b.build()


def all_assignments(circuit: Circuit):
    """Iterate every primary-input assignment of a (small) circuit."""
    inputs = circuit.inputs
    for k in range(1 << len(inputs)):
        yield {name: (k >> i) & 1 for i, name in enumerate(inputs)}
