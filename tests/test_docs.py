"""Documentation consistency checks.

Two contracts keep the docs honest without any external tooling:

* **CLI cross-check** — every subcommand and every option string that
  ``repro.cli.build_parser()`` defines must appear verbatim in
  ``docs/cli.md`` (and, conversely, every ``--flag`` token the doc
  mentions must exist in the parser, so renamed flags can't leave stale
  rows behind).
* **Markdown link checker** — every relative link in ``README.md`` and
  ``docs/*.md`` must resolve to a real file, and intra-repo anchor
  links (``page.md#section``) must match a real heading.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
CLI_DOC = DOCS / "cli.md"

#: Markdown inline links: [text](target).  Images excluded via lookbehind.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _subparsers():
    """{command name: its ArgumentParser} from the real CLI parser."""
    parser = build_parser()
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            return dict(action.choices)
    raise AssertionError("build_parser() has no subcommands")


def _doc_pages():
    pages = sorted(DOCS.glob("*.md"))
    assert pages, "docs/ has no markdown pages"
    return [REPO / "README.md"] + pages


class TestCliDocCrossCheck:
    @pytest.fixture(scope="class")
    def doc_text(self):
        return CLI_DOC.read_text()

    def test_every_subcommand_documented(self, doc_text):
        for name in _subparsers():
            assert f"## `{name}`" in doc_text, (
                f"subcommand {name!r} has no section in docs/cli.md")

    def test_every_option_string_documented(self, doc_text):
        missing = []
        for name, sub in _subparsers().items():
            for action in sub._actions:
                if action.dest == "help":
                    continue
                for opt in action.option_strings or [action.dest]:
                    if opt not in doc_text:
                        missing.append(f"{name}: {opt}")
        assert not missing, (
            "parser options absent from docs/cli.md: " + ", ".join(missing))

    def test_no_stale_flags_in_doc(self, doc_text):
        """Every --flag token the doc mentions must exist in the parser."""
        known = set()
        for sub in _subparsers().values():
            for action in sub._actions:
                known.update(action.option_strings)
        documented = set(re.findall(r"(?<![\w-])--[a-z][a-z-]*", doc_text))
        stale = documented - known
        assert not stale, f"docs/cli.md mentions unknown flags: {stale}"


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug (enough for the headings we use)."""
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(page: Path):
    return {_slugify(h) for h in _HEADING_RE.findall(page.read_text())}


@pytest.mark.parametrize("page", _doc_pages(),
                         ids=lambda p: p.relative_to(REPO).as_posix())
def test_markdown_links_resolve(page):
    text = page.read_text()
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = (page.parent / path_part).resolve() if path_part else page
        assert dest.exists(), f"{page.name}: broken link {target!r}"
        if anchor and dest.suffix == ".md":
            assert _slugify(anchor) in _anchors(dest), (
                f"{page.name}: link {target!r} points at a missing heading")


def test_index_links_every_docs_page():
    index_text = (DOCS / "index.md").read_text()
    for page in sorted(DOCS.glob("*.md")):
        if page.name == "index.md":
            continue
        assert f"({page.name})" in index_text, (
            f"docs/index.md does not link {page.name}")


def test_readme_links_docs_hub():
    readme = (REPO / "README.md").read_text()
    assert "(docs/index.md)" in readme
    assert "(docs/cli.md)" in readme


def test_engine_doc_covers_every_wire_op():
    """Every analysis op and serve control op must appear (backticked)
    in docs/engine.md, so a new op can't ship undocumented."""
    from repro.engine.requests import OPS
    from repro.engine.serve import CONTROL_OPS

    engine_doc = (DOCS / "engine.md").read_text()
    missing = [op for op in (*OPS, *CONTROL_OPS)
               if f"`{op}`" not in engine_doc]
    assert not missing, (
        "wire ops absent from docs/engine.md: " + ", ".join(missing))
