"""Correlated compiled-kernel parity: vectorized Sec. 4.1 vs the scalar oracle.

The compiled correlated plan (`CompiledCorrelatedPass`) lowers the
correlation engine's per-pair coefficient state into an integer-indexed row
table and evaluates the corrected pass with a trailing eps axis.  These
tests pin it to the scalar correlated engine (``compiled="off"``) to
<= 1e-10 — per output, per internal node, and per coefficient — on every
catalog benchmark (with the level-gap locality cap on the big ones, exactly
as the scalar engine would be run there) plus generated random circuits,
and prove the scalar oracle fallback still works when forced or when the
pair budget refuses a plan.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import get_benchmark, list_benchmarks, random_circuit
from repro.probability.error_propagation import ErrorProbability
from repro.probability.weights import compute_weights
from repro.reliability import CompiledCorrelatedPass, SinglePassAnalyzer

TOL = 1e-10
EPS_POINTS = [0.0, 0.004, 0.05, 0.21]

#: Level-gap cap applied to circuits above this node count, mirroring how
#: the scalar engine is deployed on them (full expansion on e.g. i10 takes
#: half a minute per point either way; the parity question is identical).
BIG_CIRCUIT_NODES = 300
LEVEL_GAP = 6


def _gap_for(circuit):
    big = len(circuit.topological_order()) > BIG_CIRCUIT_NODES
    return LEVEL_GAP if big else None


def _pair(circuit, weights, **kwargs):
    """(scalar oracle, compiled) correlated analyzers sharing weights."""
    gap = kwargs.pop("max_correlation_level_gap", _gap_for(circuit))
    scalar = SinglePassAnalyzer(circuit, weights=weights,
                                use_correlation=True, compiled="off",
                                max_correlation_level_gap=gap, **kwargs)
    fast = SinglePassAnalyzer(circuit, weights=weights,
                              use_correlation=True,
                              max_correlation_level_gap=gap, **kwargs)
    assert not scalar.uses_compiled
    assert fast.uses_compiled
    return scalar, fast


def _assert_sweep_matches(scalar, sweep, eps_list, eps10_list=None):
    """Every sweep column must match an independent scalar correlated run."""
    for j, eps in enumerate(eps_list):
        ref = scalar.run(eps, None if eps10_list is None else eps10_list[j])
        for o, out in enumerate(sweep.outputs):
            assert abs(ref.per_output[out] - sweep.per_output[o, j]) <= TOL
        for i, node in enumerate(sweep.node_names):
            assert abs(ref.node_errors[node].p01 - sweep.p01[i, j]) <= TOL
            assert abs(ref.node_errors[node].p10 - sweep.p10[i, j]) <= TOL


@pytest.mark.parametrize("name", list_benchmarks())
class TestCatalogCorrelatedParity:
    """<= 1e-10 vs the scalar correlated engine on all 18 catalog circuits."""

    @pytest.fixture()
    def weights(self, name):
        return compute_weights(get_benchmark(name), method="sampled",
                               n_patterns=1 << 10, seed=0)

    def test_correlated_sweep_parity(self, name, weights):
        circuit = get_benchmark(name)
        scalar, fast = _pair(circuit, weights)
        eps_points = [0.01, 0.18]
        sweep = fast.sweep(eps_points)
        assert sweep.used_correlation is True
        _assert_sweep_matches(scalar, sweep, eps_points)

    def test_coefficient_parity(self, name, weights):
        """Every compiled coefficient equals the scalar engine's answer."""
        circuit = get_benchmark(name)
        scalar, fast = _pair(circuit, weights)
        eps = 0.11
        sweep = fast.sweep([eps])
        engine = scalar.run(eps).correlation_engine
        keys = sweep.correlation_pair_keys
        assert len(keys) == int(sweep.correlation_pairs[0])
        # Cap the per-circuit check so the slow scalar expansions on the
        # big benchmarks don't dominate the suite; keys are sorted, and the
        # stride samples the whole range.
        stride = max(1, len(keys) // 200)
        for i in range(0, len(keys), stride):
            a, ea, b, eb = keys[i]
            assert abs(engine(a, ea, b, eb)
                       - sweep.correlation_coefficients[i, 0]) <= TOL


class TestCorrelatedVariants:
    @pytest.fixture(scope="class")
    def c432(self):
        return get_benchmark("c432")

    @pytest.fixture(scope="class")
    def weights(self, c432):
        return compute_weights(c432, method="sampled",
                               n_patterns=1 << 10, seed=0)

    def test_asymmetric_eps10(self, c432, weights):
        scalar, fast = _pair(c432, weights)
        eps10 = [0.3, 0.1, 0.0, 0.02]
        sweep = fast.sweep(EPS_POINTS, eps10)
        _assert_sweep_matches(scalar, sweep, EPS_POINTS, eps10)

    def test_per_gate_eps_map(self, c432, weights):
        scalar, fast = _pair(c432, weights)
        gates = c432.topological_gates()
        maps = [{g: 0.002 * ((i + shift) % 9) for i, g in enumerate(gates)}
                for shift in (0, 4)]
        sweep = fast.sweep(maps)
        _assert_sweep_matches(scalar, sweep, maps)

    def test_input_errors_parity(self, c432, weights):
        errs = {c432.inputs[0]: ErrorProbability(p01=0.07, p10=0.02),
                c432.inputs[3]: ErrorProbability(p01=0.0, p10=0.11)}
        scalar, fast = _pair(c432, weights, input_errors=errs)
        sweep = fast.sweep([0.01, 0.12])
        _assert_sweep_matches(scalar, sweep, [0.01, 0.12])

    def test_level_gap_parity(self, c432, weights):
        scalar, fast = _pair(c432, weights, max_correlation_level_gap=3)
        sweep = fast.sweep([0.05, 0.25])
        _assert_sweep_matches(scalar, sweep, [0.05, 0.25])


class TestPropertyCorrelatedParity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           eps=st.floats(0.0, 0.5),
           eps10=st.floats(0.0, 0.5))
    def test_random_circuits(self, seed, eps, eps10):
        circuit = random_circuit(n_inputs=5, n_gates=14, n_outputs=2,
                                 seed=seed)
        weights = compute_weights(circuit, method="exhaustive")
        scalar, fast = _pair(circuit, weights)
        rng = np.random.default_rng(seed)
        gates = circuit.topological_gates()
        eps_map = {g: float(p) for g, p in
                   zip(gates, rng.uniform(0.0, 0.5, len(gates)))}
        specs = [eps, eps_map]
        eps10_specs = [eps10, eps10]
        sweep = fast.sweep(specs, eps10_specs)
        _assert_sweep_matches(scalar, sweep, specs, eps10_specs)


class TestScalarOracleFallback:
    """The scalar engine stays available: forced off, or budget-refused."""

    def test_forced_oracle_matches_compiled(self, reconvergent_circuit):
        weights = compute_weights(reconvergent_circuit, method="exhaustive")
        scalar, fast = _pair(reconvergent_circuit, weights)
        for eps in (0.02, 0.3):
            ref = scalar.run(eps)
            res = fast.run(eps)
            assert ref.used_correlation and res.used_correlation
            assert ref.correlation_engine is not None
            for out in ref.per_output:
                assert abs(ref.per_output[out] - res.per_output[out]) <= TOL

    def test_budget_refusal_falls_back_to_scalar(self, reconvergent_circuit):
        """A plan over budget refuses; the analyzer degrades per-query."""
        analyzer = SinglePassAnalyzer(reconvergent_circuit,
                                      weight_method="exhaustive",
                                      use_correlation=True,
                                      max_correlation_pairs=2)
        assert not analyzer.uses_compiled  # CompiledPassUnsupported inside
        result = analyzer.run(0.1)
        assert result.correlation_engine.budget_exceeded
        sweep = analyzer.sweep([0.05, 0.1])
        assert sweep.per_output.shape[1] == 2

    def test_compiled_plan_refuses_over_budget(self, reconvergent_circuit):
        from repro.reliability import CompiledPassUnsupported
        weights = compute_weights(reconvergent_circuit, method="exhaustive")
        with pytest.raises(CompiledPassUnsupported, match="budget"):
            CompiledCorrelatedPass(reconvergent_circuit, weights,
                                   max_pairs=2)


class TestCorrelationPlanCache:
    def test_cache_roundtrip_identical_results(self, reconvergent_circuit,
                                               tmp_path):
        weights = compute_weights(reconvergent_circuit, method="exhaustive")
        cache = str(tmp_path / "plans")
        first = CompiledCorrelatedPass(reconvergent_circuit, weights,
                                       cache_dir=cache)
        again = CompiledCorrelatedPass(reconvergent_circuit, weights,
                                       cache_dir=cache)
        assert again.pair_keys == first.pair_keys
        a = first.run_sweep(EPS_POINTS)
        b = again.run_sweep(EPS_POINTS)
        assert np.array_equal(a.per_output, b.per_output)
        assert np.array_equal(a.correlation_coefficients,
                              b.correlation_coefficients)

    def test_unsupported_marker_cached(self, reconvergent_circuit, tmp_path):
        from repro.reliability import CompiledPassUnsupported
        weights = compute_weights(reconvergent_circuit, method="exhaustive")
        cache = str(tmp_path / "plans")
        for expected in ("budget", "cached plan"):
            with pytest.raises(CompiledPassUnsupported, match=expected):
                CompiledCorrelatedPass(reconvergent_circuit, weights,
                                       max_pairs=2, cache_dir=cache)

    def test_analyzer_threads_cache_dir(self, reconvergent_circuit,
                                        tmp_path):
        import os
        cache = str(tmp_path / "plans")
        analyzer = SinglePassAnalyzer(reconvergent_circuit,
                                      weight_method="exhaustive",
                                      use_correlation=True,
                                      weights_cache_dir=cache)
        assert analyzer.uses_compiled
        assert any(e.startswith("corrplan-") for e in os.listdir(cache))
