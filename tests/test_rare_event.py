"""Tests for the stratified rare-event reliability estimator."""

import pytest

from repro.circuits import fig2_circuit, get_benchmark
from repro.reliability import ObservabilityModel, exhaustive_exact_reliability
from repro.sim import StratifiedEstimator, stratified_reliability


@pytest.fixture(scope="module")
def fig2_estimator():
    return StratifiedEstimator(fig2_circuit(), max_failures=3,
                               n_patterns=1 << 14,
                               samples_per_stratum=400, seed=0)


class TestStratifiedEstimator:
    def test_matches_closed_form_at_tiny_eps(self, fig2_estimator):
        model = ObservabilityModel(fig2_circuit())
        for eps in (1e-8, 1e-6, 1e-4):
            s = fig2_estimator.evaluate(eps)
            assert s.delta() == pytest.approx(model.delta(eps), rel=0.05)

    def test_matches_exact_at_moderate_eps(self, fig2_estimator):
        for eps in (0.01, 0.05):
            s = fig2_estimator.evaluate(eps)
            exact = exhaustive_exact_reliability(fig2_circuit(), eps)
            assert s.delta() == pytest.approx(exact.delta(), rel=0.05)
            # Truncation bound honestly reported.
            assert s.delta() <= exact.delta() + s.tail_bound + 0.01

    def test_single_failure_stratum_is_mean_observability(self,
                                                          fig2_estimator):
        from repro.reliability import bdd_observabilities
        obs = bdd_observabilities(fig2_circuit())
        mean_obs = sum(obs.values()) / len(obs)
        assert fig2_estimator.conditional[1]["*"] == pytest.approx(
            mean_obs, abs=0.02)

    def test_eps_sweep_reuses_strata(self, fig2_estimator):
        a = fig2_estimator.evaluate(1e-5)
        b = fig2_estimator.evaluate(1e-4)
        # Single-failure regime: delta scales linearly with eps.
        assert b.delta() / a.delta() == pytest.approx(10.0, rel=0.01)

    def test_tail_bound_grows_with_eps(self, fig2_estimator):
        assert (fig2_estimator.evaluate(0.2).tail_bound
                > fig2_estimator.evaluate(0.01).tail_bound)

    def test_eps_validated(self, fig2_estimator):
        with pytest.raises(ValueError):
            fig2_estimator.evaluate(0.7)

    def test_max_failures_validated(self):
        with pytest.raises(ValueError):
            StratifiedEstimator(fig2_circuit(), max_failures=0)

    def test_multi_output_per_output_entries(self):
        result = stratified_reliability(get_benchmark("c17"), 1e-4,
                                        max_failures=2,
                                        n_patterns=1 << 12,
                                        samples_per_stratum=100)
        assert set(result.per_output) == {"22", "23"}
        assert result.any_output >= max(result.per_output.values()) - 1e-12

    def test_efficient_where_plain_mc_is_hopeless(self):
        """At eps = 1e-7 a 2^14-pattern plain MC sees ~0 failures; the
        stratified estimator still resolves delta to a few percent."""
        circuit = get_benchmark("c17")
        result = stratified_reliability(circuit, 1e-7, max_failures=2,
                                        n_patterns=1 << 13,
                                        samples_per_stratum=50)
        model = ObservabilityModel(circuit, output="22")
        assert result.per_output["22"] == pytest.approx(
            model.delta(1e-7), rel=0.1)
