"""Tests for the BLIF reader/writer."""

import pytest

from repro.circuit import GateType
from repro.io import BlifFormatError, dumps_blif, load_blif, loads_blif, save_blif
from tests.conftest import all_assignments


class TestStandardGateRecognition:
    def _single(self, cover, n_in=2):
        ins = " ".join(f"i{t}" for t in range(n_in))
        text = (f".model m\n.inputs {ins}\n.outputs y\n"
                f".names {ins} y\n{cover}\n.end\n")
        return loads_blif(text)

    def test_and(self):
        c = self._single("11 1")
        assert c.node("y").gate_type is GateType.AND

    def test_nand(self):
        c = self._single("11 0")
        assert c.node("y").gate_type is GateType.NAND

    def test_or(self):
        c = self._single("1- 1\n-1 1")
        assert c.node("y").gate_type is GateType.OR

    def test_nor(self):
        c = self._single("1- 0\n-1 0")
        assert c.node("y").gate_type is GateType.NOR

    def test_xor_parity_cover(self):
        c = self._single("10 1\n01 1")
        assert c.node("y").gate_type is GateType.XOR

    def test_xnor_parity_cover(self):
        c = self._single("00 1\n11 1")
        assert c.node("y").gate_type is GateType.XNOR

    def test_buffer_and_inverter(self):
        text = (".model m\n.inputs a\n.outputs y z\n"
                ".names a y\n1 1\n.names a z\n0 1\n.end\n")
        c = loads_blif(text)
        assert c.node("y").gate_type is GateType.BUF
        assert c.node("z").gate_type is GateType.NOT

    def test_and_with_complemented_literal(self):
        c = self._single("10 1")  # i0 AND NOT i1
        assert c.evaluate_outputs({"i0": 1, "i1": 0}) == {"y": 1}
        assert c.evaluate_outputs({"i0": 1, "i1": 1}) == {"y": 0}

    def test_constants(self):
        text = (".model m\n.inputs a\n.outputs one zero y\n"
                ".names one\n1\n.names zero\n.names a y\n1 1\n.end\n")
        c = loads_blif(text)
        out = c.evaluate_outputs({"a": 0})
        assert out["one"] == 1 and out["zero"] == 0


class TestGeneralCovers:
    def test_arbitrary_sop_synthesized(self):
        # f = a'bc + ab'c + abc' (exactly-two-of-three), not a standard gate.
        text = (".model m\n.inputs a b c\n.outputs y\n"
                ".names a b c y\n011 1\n101 1\n110 1\n.end\n")
        c = loads_blif(text)
        for assignment in all_assignments(c):
            ones = sum(assignment.values())
            assert c.evaluate_outputs(assignment)["y"] == int(ones == 2)

    def test_off_set_cover(self):
        # Output defined by its 0-set: y = 0 iff a=1,b=0.
        text = (".model m\n.inputs a b\n.outputs y\n"
                ".names a b y\n10 0\n.end\n")
        c = loads_blif(text)
        for assignment in all_assignments(c):
            expected = 0 if (assignment["a"], assignment["b"]) == (1, 0) else 1
            assert c.evaluate_outputs(assignment)["y"] == expected

    def test_dont_cares_in_cubes(self):
        text = (".model m\n.inputs a b c\n.outputs y\n"
                ".names a b c y\n1-- 1\n-11 1\n.end\n")
        c = loads_blif(text)
        for assignment in all_assignments(c):
            expected = assignment["a"] | (assignment["b"] & assignment["c"])
            assert c.evaluate_outputs(assignment)["y"] == expected

    def test_continuation_lines(self):
        text = (".model m\n.inputs a \\\nb\n.outputs y\n"
                ".names a b y\n11 1\n.end\n")
        c = loads_blif(text)
        assert set(c.inputs) == {"a", "b"}


class TestErrors:
    def test_latch_parses_as_sequential(self):
        # ``.latch`` used to be rejected outright; it now builds a
        # SequentialCircuit (full coverage in tests/test_sequential.py).
        from repro.circuit import SequentialCircuit
        text = ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n"
        seq = loads_blif(text)
        assert isinstance(seq, SequentialCircuit)
        assert seq.num_flops == 1 and seq.state_names == ["y"]

    def test_subckt_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.subckt foo x=a y=y\n.end\n"
        with pytest.raises(BlifFormatError):
            loads_blif(text)

    def test_no_model(self):
        with pytest.raises(BlifFormatError, match="model"):
            loads_blif(".inputs a\n")

    def test_undefined_output(self):
        text = ".model m\n.inputs a\n.outputs ghost\n.names a y\n1 1\n.end\n"
        with pytest.raises(BlifFormatError):
            loads_blif(text)

    def test_cycle(self):
        text = (".model m\n.inputs a\n.outputs x\n"
                ".names a y x\n11 1\n.names x y\n1 1\n.end\n")
        with pytest.raises(BlifFormatError, match="cycle"):
            loads_blif(text)

    def test_double_definition(self):
        text = (".model m\n.inputs a\n.outputs y\n"
                ".names a y\n1 1\n.names a y\n0 1\n.end\n")
        with pytest.raises(BlifFormatError, match="twice"):
            loads_blif(text)

    def test_bad_cube_width(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n"
        with pytest.raises(BlifFormatError):
            loads_blif(text)


class TestRoundTrip:
    def test_full_adder(self, full_adder_circuit):
        reloaded = loads_blif(dumps_blif(full_adder_circuit))
        for assignment in all_assignments(full_adder_circuit):
            assert (reloaded.evaluate_outputs(assignment)
                    == full_adder_circuit.evaluate_outputs(assignment))

    def test_file_round_trip(self, tmp_path, reconvergent_circuit):
        path = tmp_path / "c.blif"
        save_blif(reconvergent_circuit, path)
        reloaded = load_blif(path)
        for assignment in all_assignments(reconvergent_circuit):
            assert (reloaded.evaluate_outputs(assignment)
                    == reconvergent_circuit.evaluate_outputs(assignment))

    def test_wide_xor_round_trip(self):
        from repro.circuit import CircuitBuilder
        b = CircuitBuilder("wx")
        a, c, d = b.inputs("a", "c", "d")
        b.outputs(b.gate(GateType.XOR, a, c, d, name="y"))
        circuit = b.build()
        reloaded = loads_blif(dumps_blif(circuit))
        for assignment in all_assignments(circuit):
            assert (reloaded.evaluate_outputs(assignment)
                    == circuit.evaluate_outputs(assignment))
