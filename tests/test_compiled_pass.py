"""Compiled-kernel parity: the vectorized sweep must match the scalar pass.

The compiled plan (`repro.reliability.compiled_pass`) re-implements the
Sec. 4 independence propagation as batched tensor ops with a trailing eps
axis.  These tests pin it to the scalar reference path (``compiled="off"``)
to <= 1e-12 — per output *and* per internal node — on every catalog
benchmark, across symmetric eps, asymmetric ``eps10``, per-gate eps maps
and non-uniform input distributions, plus arbitrary generated circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import get_benchmark, list_benchmarks, random_circuit
from repro.probability.error_propagation import ErrorProbability
from repro.probability.weights import compute_weights
from repro.reliability import (
    CompiledSinglePass,
    SinglePassAnalyzer,
    SinglePassResult,
    SweepResult,
)

TOL = 1e-12
EPS_POINTS = [0.0, 0.004, 0.05, 0.21]


def _pair(circuit, weights, **kwargs):
    """(scalar reference, compiled) analyzers sharing one WeightData."""
    scalar = SinglePassAnalyzer(circuit, weights=weights,
                                use_correlation=False, compiled="off",
                                **kwargs)
    fast = SinglePassAnalyzer(circuit, weights=weights,
                              use_correlation=False, **kwargs)
    assert not scalar.uses_compiled
    assert fast.uses_compiled
    return scalar, fast


def _assert_sweep_matches(scalar, sweep, eps_list, eps10_list=None):
    """Every sweep column must match an independent scalar run."""
    for j, eps in enumerate(eps_list):
        ref = scalar.run(eps, None if eps10_list is None else eps10_list[j])
        for o, out in enumerate(sweep.outputs):
            assert abs(ref.per_output[out] - sweep.per_output[o, j]) <= TOL
        for i, node in enumerate(sweep.node_names):
            assert abs(ref.node_errors[node].p01 - sweep.p01[i, j]) <= TOL
            assert abs(ref.node_errors[node].p10 - sweep.p10[i, j]) <= TOL


@pytest.mark.parametrize("name", list_benchmarks())
class TestCatalogParity:
    @pytest.fixture()
    def weights(self, name):
        return compute_weights(get_benchmark(name), method="sampled",
                               n_patterns=1 << 10, seed=0)

    def test_symmetric_sweep(self, name, weights):
        circuit = get_benchmark(name)
        scalar, fast = _pair(circuit, weights)
        sweep = fast.sweep(EPS_POINTS)
        assert sweep.n_points == len(EPS_POINTS)
        _assert_sweep_matches(scalar, sweep, EPS_POINTS)

    def test_asymmetric_eps10(self, name, weights):
        circuit = get_benchmark(name)
        scalar, fast = _pair(circuit, weights)
        eps10 = [0.3, 0.1, 0.0, 0.02]
        sweep = fast.sweep(EPS_POINTS, eps10)
        _assert_sweep_matches(scalar, sweep, EPS_POINTS, eps10)

    def test_per_gate_eps_map(self, name, weights):
        circuit = get_benchmark(name)
        scalar, fast = _pair(circuit, weights)
        gates = circuit.topological_gates()
        maps = [{g: 0.002 * ((i + shift) % 9) for i, g in enumerate(gates)}
                for shift in (0, 4)]
        sweep = fast.sweep(maps)
        _assert_sweep_matches(scalar, sweep, maps)

    def test_non_uniform_input_probs(self, name):
        circuit = get_benchmark(name)
        probs = {pi: 0.2 + 0.6 * (i % 3) / 2
                 for i, pi in enumerate(circuit.inputs)}
        weights = compute_weights(circuit, method="sampled",
                                  n_patterns=1 << 10, seed=1,
                                  input_probs=probs)
        scalar, fast = _pair(circuit, weights)
        sweep = fast.sweep([0.01, 0.12], [0.07, 0.0])
        _assert_sweep_matches(scalar, sweep, [0.01, 0.12], [0.07, 0.0])


class TestPropertyParity:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           eps=st.floats(0.0, 0.5),
           eps10=st.floats(0.0, 0.5))
    def test_random_circuits(self, seed, eps, eps10):
        circuit = random_circuit(n_inputs=5, n_gates=14, n_outputs=2,
                                 seed=seed)
        weights = compute_weights(circuit, method="exhaustive")
        scalar, fast = _pair(circuit, weights)
        rng = np.random.default_rng(seed)
        gates = circuit.topological_gates()
        eps_map = {g: float(p) for g, p in
                   zip(gates, rng.uniform(0.0, 0.5, len(gates)))}
        specs = [eps, eps_map]
        eps10_specs = [eps10, eps10]
        sweep = fast.sweep(specs, eps10_specs)
        _assert_sweep_matches(scalar, sweep, specs, eps10_specs)


class TestDispatchAndApi:
    @pytest.fixture(scope="class")
    def c17(self):
        return get_benchmark("c17")

    @pytest.fixture(scope="class")
    def weights(self, c17):
        return compute_weights(c17, method="exhaustive")

    def test_run_dispatches_to_kernel(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        result = fast.run(0.05)
        assert isinstance(result, SinglePassResult)
        assert result.used_correlation is False
        assert result.correlation_pairs == 0
        ref = SinglePassAnalyzer(c17, weights=weights, use_correlation=False,
                                 compiled="off").run(0.05)
        for out in ref.per_output:
            assert abs(ref.per_output[out] - result.per_output[out]) <= TOL

    def test_correlated_analyzer_dispatches_compiled(self, c17, weights):
        corr = SinglePassAnalyzer(c17, weights=weights, use_correlation=True)
        assert corr.uses_compiled
        result = corr.run(0.05)
        assert result.used_correlation is True
        assert result.correlation_pairs > 0
        # Consolidation compatibility: the compiled run hands back a
        # seeded engine that answers every query like a scalar run's (the
        # scalar memo also holds trivially-1.0 pairs the compiled closure
        # prunes; those recompute lazily on the seeded engine).
        ref = SinglePassAnalyzer(c17, weights=weights, use_correlation=True,
                                 compiled="off").run(0.05)
        seeded = result.correlation_engine
        for (a, ea, b, eb), value in \
                ref.correlation_engine.coefficient_items():
            assert abs(seeded(a, ea, b, eb) - value) <= TOL

    def test_compiled_off_is_honored(self, c17, weights):
        off = SinglePassAnalyzer(c17, weights=weights, use_correlation=False,
                                 compiled="off")
        assert not off.uses_compiled

    def test_invalid_compiled_mode_rejected(self, c17, weights):
        with pytest.raises(ValueError, match="compiled"):
            SinglePassAnalyzer(c17, weights=weights, compiled="yes")

    def test_point_materializes_single_pass_result(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        sweep = fast.sweep([0.01, 0.2])
        point = sweep.point(1)
        assert isinstance(point, SinglePassResult)
        ref = fast.run(0.2)
        for out in ref.per_output:
            assert abs(point.per_output[out] - ref.per_output[out]) <= TOL
        assert point.node_errors.keys() == ref.node_errors.keys()

    def test_curve_matches_per_point_runs(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        eps = [0.0, 0.03, 0.4]
        curve = fast.curve(eps, output="22")
        for e in eps:
            assert abs(curve[e] - fast.run(e).delta("22")) <= TOL

    def test_curve_rejects_map_specs(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        sweep = fast.sweep([{g: 0.1 for g in c17.topological_gates()}])
        with pytest.raises(TypeError, match="scalar eps"):
            sweep.curve()

    def test_sweep_validation(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        with pytest.raises(ValueError, match="at least one"):
            fast.sweep([])
        with pytest.raises(ValueError, match="length"):
            fast.sweep([0.1, 0.2], [0.1])
        with pytest.raises(ValueError):
            fast.sweep([0.7])

    def test_input_errors_parity(self, c17, weights):
        errs = {c17.inputs[0]: ErrorProbability(p01=0.07, p10=0.02)}
        scalar = SinglePassAnalyzer(c17, weights=weights,
                                    use_correlation=False, compiled="off",
                                    input_errors=errs)
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False, input_errors=errs)
        _assert_sweep_matches(scalar, fast.sweep(EPS_POINTS), EPS_POINTS)

    def test_plan_reuse_across_sweeps(self, c17, weights):
        fast = SinglePassAnalyzer(c17, weights=weights,
                                  use_correlation=False)
        fast.sweep([0.1])
        plan = fast._plan
        assert plan is not None
        fast.sweep([0.2])
        assert fast._plan is plan

    def test_compiled_plan_direct_api(self, c17, weights):
        plan = CompiledSinglePass(c17, weights)
        sweep = plan.run_sweep([0.05])
        assert isinstance(sweep, SweepResult)
        one = plan.run(0.05)
        assert np.allclose(one.per_output, sweep.per_output)


class TestCorrelatedSweepDispatch:
    """Correlated sweeps run entirely on the compiled correlated kernel."""

    def test_tree_sweep_uses_kernel_and_matches(self, tree_circuit):
        weights = compute_weights(tree_circuit, method="exhaustive")
        corr = SinglePassAnalyzer(tree_circuit, weights=weights,
                                  use_correlation=True)
        assert corr.uses_compiled
        sweep = corr.sweep(EPS_POINTS)
        assert sweep.used_correlation is True
        # A fanout-free circuit has no structurally correlated pairs.
        assert not sweep.correlation_pairs.any()
        ref = SinglePassAnalyzer(tree_circuit, weights=weights,
                                 use_correlation=True, compiled="off")
        for j, eps in enumerate(EPS_POINTS):
            res = ref.run(eps)
            for o, out in enumerate(sweep.outputs):
                assert abs(res.per_output[out]
                           - sweep.per_output[o, j]) <= TOL

    def test_reconvergent_sweep_compiled_with_pairs(self,
                                                    reconvergent_circuit):
        corr = SinglePassAnalyzer(reconvergent_circuit,
                                  weight_method="exhaustive",
                                  use_correlation=True)
        sweep = corr.sweep([0.01, 0.1])
        assert corr.uses_compiled
        assert sweep.correlation_pairs.min() > 0
        assert len(sweep.correlation_pair_keys) == \
            sweep.correlation_pairs[0]
        ref = SinglePassAnalyzer(reconvergent_circuit,
                                 weight_method="exhaustive",
                                 use_correlation=True, compiled="off")
        for j, eps in enumerate([0.01, 0.1]):
            res = ref.run(eps)
            for o, out in enumerate(sweep.outputs):
                assert abs(res.per_output[out]
                           - sweep.per_output[o, j]) <= TOL


class TestParallelSweep:
    def test_jobs_fanout_matches_serial(self):
        circuit = get_benchmark("c17")
        # Force the scalar path: with a compiled plan the sweep is one
        # vectorized pass and the pool would never spin up.
        analyzer = SinglePassAnalyzer(circuit, weight_method="exhaustive",
                                      use_correlation=True, compiled="off")
        eps = [0.01, 0.05, 0.1, 0.2]
        serial = analyzer.sweep(eps)
        parallel = analyzer.sweep(eps, jobs=2)
        assert np.allclose(serial.per_output, parallel.per_output, atol=0.0)
        assert np.allclose(serial.p01, parallel.p01, atol=0.0)
        assert list(parallel.correlation_pairs) == \
            list(serial.correlation_pairs)
