"""Tests for the estimator-comparison harness."""

import pytest

from repro.circuits import c17, get_benchmark
from repro.reliability import compare_methods


@pytest.fixture(scope="module")
def c17_comparison():
    return compare_methods(c17(), 0.05, mc_patterns=1 << 15, seed=0)


class TestCompareMethods:
    def test_exact_reference_on_small_circuits(self, c17_comparison):
        assert c17_comparison.reference == "exact (exhaustive)"
        methods = {r.method for r in c17_comparison.rows}
        assert {"monte carlo", "single-pass (corr)", "single-pass (indep)",
                "closed form", "compositional",
                "stratified MC"} <= methods

    def test_all_rows_have_all_outputs(self, c17_comparison):
        for row in c17_comparison.rows:
            assert set(row.per_output) == {"22", "23"}

    def test_accuracy_ordering(self, c17_comparison):
        errors = c17_comparison.errors_vs_reference()
        # The paper's central claim on a small circuit: the single pass
        # with correlations beats the compositional baseline.
        assert errors["single-pass (corr)"] < errors["compositional"]

    def test_mc_reference_on_larger_circuits(self):
        comparison = compare_methods(get_benchmark("x2"), 0.1,
                                     mc_patterns=1 << 13, seed=1)
        assert comparison.reference == "monte carlo"
        assert "exact (exhaustive)" not in {r.method
                                            for r in comparison.rows}

    def test_stratified_skipped_at_large_eps(self):
        comparison = compare_methods(c17(), 0.3, mc_patterns=1 << 12)
        assert "stratified MC" not in {r.method for r in comparison.rows}

    def test_table_rendering(self, c17_comparison):
        text = c17_comparison.as_table()
        assert "method comparison — c17" in text
        assert "mean % error vs exact" in text

    def test_row_lookup(self, c17_comparison):
        row = c17_comparison.row("monte carlo")
        assert row.seconds >= 0
        with pytest.raises(KeyError):
            c17_comparison.row("astrology")

    def test_timings_recorded(self, c17_comparison):
        for row in c17_comparison.rows:
            assert row.seconds >= 0.0

    def test_cli_compare(self, capsys):
        from repro.cli import main
        assert main(["compare", "c17", "--eps", "0.05",
                     "--patterns", "4096"]) == 0
        out = capsys.readouterr().out
        assert "single-pass (corr)" in out
