"""Property-based tests (hypothesis) on the core invariants.

These encode the load-bearing mathematical claims:

* the BDD engine agrees with truth-table semantics for arbitrary
  expressions;
* the bit-parallel simulator agrees with the interpreted evaluator on
  arbitrary circuits;
* the single-pass analysis is *exact* on arbitrary fanout-free circuits
  (the paper's Sec. 4 exactness claim);
* probabilities stay in range and exact oracles stay consistent under
  arbitrary eps vectors.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.bdd import BddManager
from repro.circuit import Circuit, CircuitBuilder, GateType, is_tree
from repro.reliability import (
    exhaustive_exact_reliability,
    frontier_exact_reliability,
)
from repro.sim import patterns
from repro.sim.simulator import exhaustive_simulate

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_BINARY_TYPES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                 GateType.XOR, GateType.XNOR]
_ALL_TYPES = _BINARY_TYPES + [GateType.NOT, GateType.BUF]


@st.composite
def random_dag_circuit(draw, max_inputs=5, max_gates=12):
    """An arbitrary small circuit (fanout allowed)."""
    n_inputs = draw(st.integers(2, max_inputs))
    n_gates = draw(st.integers(1, max_gates))
    circuit = Circuit("hyp")
    nodes = [circuit.add_input(f"x{i}") for i in range(n_inputs)]
    for k in range(n_gates):
        gate_type = draw(st.sampled_from(_ALL_TYPES))
        if gate_type in (GateType.NOT, GateType.BUF):
            fanins = [nodes[draw(st.integers(0, len(nodes) - 1))]]
        else:
            i = draw(st.integers(0, len(nodes) - 1))
            j = draw(st.integers(0, len(nodes) - 2))
            if j >= i:
                j += 1
            fanins = [nodes[i], nodes[j]]
        nodes.append(circuit.add_gate(f"g{k}", gate_type, fanins))
    circuit.set_output(nodes[-1])
    return circuit


@st.composite
def random_tree_circuit(draw, max_leaves=8):
    """A fanout-free circuit over fresh inputs (every node used once)."""
    n_leaves = draw(st.integers(2, max_leaves))
    builder = CircuitBuilder("hyptree")
    layer = list(builder.inputs(*[f"x{i}" for i in range(n_leaves)]))
    while len(layer) > 1:
        gate_type = draw(st.sampled_from(_BINARY_TYPES))
        a = layer.pop(draw(st.integers(0, len(layer) - 1)))
        b = layer.pop(draw(st.integers(0, len(layer) - 1)))
        if draw(st.booleans()):
            a = builder.not_(a)
        layer.append(builder.gate(gate_type, a, b))
    builder.outputs(layer[0])
    return builder.build()


# --------------------------------------------------------------------------
# BDD engine vs truth tables
# --------------------------------------------------------------------------

@given(random_dag_circuit())
@settings(max_examples=60, deadline=None)
def test_bdd_matches_evaluator(circuit):
    from repro.bdd import build_node_bdds
    bdds = build_node_bdds(circuit)
    out = circuit.outputs[0]
    n = len(circuit.inputs)
    for k in range(1 << n):
        assignment = {f"x{i}": (k >> i) & 1 for i in range(n)}
        vec = [assignment[name] for name in circuit.inputs]
        assert bdds[out].evaluate(vec) == circuit.evaluate(assignment)[out]


@given(random_dag_circuit())
@settings(max_examples=40, deadline=None)
def test_bdd_sat_count_matches_probability(circuit):
    from repro.bdd import build_node_bdds
    bdds = build_node_bdds(circuit)
    out = circuit.outputs[0]
    n = bdds.manager.num_vars
    count = bdds[out].sat_count()
    assert bdds[out].probability() == pytest.approx(count / (1 << n))


# --------------------------------------------------------------------------
# Simulator vs evaluator
# --------------------------------------------------------------------------

@given(random_dag_circuit())
@settings(max_examples=60, deadline=None)
def test_simulator_matches_evaluator(circuit):
    values = exhaustive_simulate(circuit)
    n = len(circuit.inputs)
    out = circuit.outputs[0]
    for k in range(1 << n):
        assignment = {f"x{i}": (k >> i) & 1 for i in range(n)}
        word, bit = divmod(k, 64)
        got = (int(values[out][word]) >> bit) & 1
        assert got == circuit.evaluate(assignment)[out]


# --------------------------------------------------------------------------
# Single-pass exactness on trees (paper Sec. 4)
# --------------------------------------------------------------------------

@given(random_tree_circuit(), st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_single_pass_exact_on_trees(circuit, eps):
    assert is_tree(circuit)
    sp = analyze(circuit, eps).delta()
    exact = exhaustive_exact_reliability(circuit, eps).delta()
    assert sp == pytest.approx(exact, abs=1e-9)


@given(random_tree_circuit(),
       st.lists(st.floats(0.0, 0.5), min_size=20, max_size=20))
@settings(max_examples=25, deadline=None)
def test_single_pass_exact_on_trees_per_gate_eps(circuit, eps_values):
    gates = circuit.topological_gates()
    eps = {g: eps_values[i % len(eps_values)] for i, g in enumerate(gates)}
    sp = analyze(circuit, eps).delta()
    exact = exhaustive_exact_reliability(circuit, eps).delta()
    assert sp == pytest.approx(exact, abs=1e-9)


# --------------------------------------------------------------------------
# Probabilistic range and oracle agreement on DAGs
# --------------------------------------------------------------------------

@given(random_dag_circuit(max_gates=10), st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_delta_stays_in_range(circuit, eps):
    result = analyze(circuit, eps)
    for value in result.per_output.values():
        assert 0.0 <= value <= 1.0
    node_errors = result.node_errors
    for ep in node_errors.values():
        assert 0.0 <= ep.p01 <= 1.0
        assert 0.0 <= ep.p10 <= 1.0


@given(random_dag_circuit(max_gates=9), st.floats(0.01, 0.4))
@settings(max_examples=25, deadline=None)
def test_exact_oracles_agree(circuit, eps):
    a = exhaustive_exact_reliability(circuit, eps).delta()
    b = frontier_exact_reliability(circuit, eps).delta()
    assert a == pytest.approx(b, abs=1e-10)


@given(random_dag_circuit(max_gates=10), st.floats(0.01, 0.35))
@settings(max_examples=25, deadline=None)
def test_single_pass_reasonably_close_to_exact(circuit, eps):
    """Soft accuracy bound on arbitrary small DAGs (not just trees)."""
    sp = analyze(circuit, eps).delta()
    exact = exhaustive_exact_reliability(circuit, eps).delta()
    assert sp == pytest.approx(exact, abs=0.12)


# --------------------------------------------------------------------------
# Pattern utilities
# --------------------------------------------------------------------------

@given(st.floats(0.0, 1.0), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_bernoulli_density(p, seed):
    rng = np.random.default_rng(seed)
    words = patterns.bernoulli_words(p, 2048, rng)
    density = patterns.popcount(words) / (2048 * 64)
    assert density == pytest.approx(p, abs=0.02)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=500))
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(bits):
    packed = patterns.pack_bits(bits)
    assert list(patterns.unpack_bits(packed, len(bits))) == bits


@given(st.integers(1, 10_000))
@settings(max_examples=50, deadline=None)
def test_masked_popcount_of_ones(n_patterns):
    words = patterns.ones(patterns.words_for_patterns(n_patterns))
    assert patterns.masked_popcount(words, n_patterns) == n_patterns
