"""Tests for gate weight-vector computation."""

import numpy as np
import pytest

from repro.circuit import truth_table
from repro.circuits import parity_tree, random_circuit
from repro.probability import (
    bdd_weight_vectors,
    compute_weights,
    exhaustive_weight_vectors,
    sampled_weight_vectors,
)


class TestExactWeights:
    def test_bdd_matches_exhaustive(self, full_adder_circuit):
        wb = bdd_weight_vectors(full_adder_circuit)
        we = exhaustive_weight_vectors(full_adder_circuit)
        for gate in full_adder_circuit.topological_gates():
            np.testing.assert_allclose(wb.weights[gate], we.weights[gate],
                                       atol=1e-12)

    def test_weights_sum_to_one(self, reconvergent_circuit):
        data = exhaustive_weight_vectors(reconvergent_circuit)
        for gate, vec in data.weights.items():
            assert vec.sum() == pytest.approx(1.0)

    def test_uniform_weights_at_primary_gates(self, full_adder_circuit):
        # Gate t = XOR(a, b): both fanins are independent uniform inputs.
        data = bdd_weight_vectors(full_adder_circuit)
        np.testing.assert_allclose(data.weights["t"], [0.25] * 4)

    def test_correlated_fanins_reflected(self, full_adder_circuit):
        # c2 = AND(t, cin) with t = a xor b: still uniform; but in the
        # reconvergent circuit, g5 = NAND(g2, i0) has correlated fanins.
        data = bdd_weight_vectors(full_adder_circuit)
        # paranoid: joint of (s fanins) = (t, cin) uniform
        np.testing.assert_allclose(data.weights["s"], [0.25] * 4)

    def test_reconvergent_joint_not_product(self, reconvergent_circuit):
        data = bdd_weight_vectors(reconvergent_circuit)
        w = data.weights["g5"]  # NAND(g2, i0), correlated
        p_g2 = data.signal_prob["g2"]
        p_i0 = data.signal_prob["i0"]
        independent = np.array([
            (1 - p_g2) * (1 - p_i0), p_g2 * (1 - p_i0),
            (1 - p_g2) * p_i0, p_g2 * p_i0])
        assert not np.allclose(w, independent)

    def test_signal_probs_included(self, full_adder_circuit):
        data = bdd_weight_vectors(full_adder_circuit)
        assert data.signal_prob["s"] == pytest.approx(0.5)
        assert data.signal_prob["a"] == pytest.approx(0.5)

    def test_biased_input_probs(self, full_adder_circuit):
        data = bdd_weight_vectors(full_adder_circuit,
                                  input_probs={"a": 1.0, "b": 1.0})
        assert data.signal_prob["c1"] == pytest.approx(1.0)
        np.testing.assert_allclose(data.weights["c1"], [0, 0, 0, 1.0],
                                   atol=1e-12)

    def test_output_side_weight(self, full_adder_circuit):
        data = bdd_weight_vectors(full_adder_circuit)
        tt = truth_table(full_adder_circuit.node("c1").gate_type, 2)
        w0 = data.output_side_weight("c1", tt, 0)
        w1 = data.output_side_weight("c1", tt, 1)
        assert w0 == pytest.approx(0.75)
        assert w1 == pytest.approx(0.25)


class TestSampledWeights:
    def test_close_to_exact(self, reconvergent_circuit):
        exact = exhaustive_weight_vectors(reconvergent_circuit)
        sampled = sampled_weight_vectors(reconvergent_circuit,
                                         n_patterns=1 << 16, seed=1)
        for gate in reconvergent_circuit.topological_gates():
            np.testing.assert_allclose(sampled.weights[gate],
                                       exact.weights[gate], atol=0.01)

    def test_source_recorded(self, full_adder_circuit):
        assert sampled_weight_vectors(full_adder_circuit).source == "sampled"
        assert exhaustive_weight_vectors(
            full_adder_circuit).source == "exhaustive"
        assert bdd_weight_vectors(full_adder_circuit).source == "bdd"


class TestDispatch:
    def test_auto_uses_exhaustive_for_small(self, full_adder_circuit):
        assert compute_weights(full_adder_circuit).source == "exhaustive"

    def test_auto_falls_back_for_wide_inputs(self):
        circuit = random_circuit(40, 30, 4, seed=0)
        data = compute_weights(circuit, n_patterns=1 << 12)
        assert data.source in ("bdd", "sampled")

    def test_explicit_methods(self, full_adder_circuit):
        for method in ("bdd", "exhaustive", "sampled"):
            assert compute_weights(full_adder_circuit,
                                   method=method).source == method

    def test_unknown_method_rejected(self, full_adder_circuit):
        with pytest.raises(ValueError):
            compute_weights(full_adder_circuit, method="psychic")

    def test_wide_gate_weight_length(self):
        from repro.circuit import CircuitBuilder, GateType
        b = CircuitBuilder("wide")
        a, c, d = b.inputs("a", "c", "d")
        b.outputs(b.gate(GateType.AND, a, c, d, name="y"))
        data = compute_weights(b.build())
        assert len(data.weights["y"]) == 8
        assert data.weights["y"].sum() == pytest.approx(1.0)
