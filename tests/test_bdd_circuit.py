"""Tests for the circuit-to-BDD bridge."""

import pytest

from repro.bdd import BddManager, build_node_bdds, joint_probability
from repro.circuits import c17, parity_tree
from repro.sim.simulator import signal_probabilities
from tests.conftest import all_assignments


class TestBuildNodeBdds:
    def test_matches_evaluation(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        for assignment in all_assignments(full_adder_circuit):
            values = full_adder_circuit.evaluate(assignment)
            vec = [assignment[name] for name in full_adder_circuit.inputs]
            for node, expected in values.items():
                assert bdds[node].evaluate(vec) == expected

    def test_c17(self):
        circuit = c17()
        bdds = build_node_bdds(circuit)
        for assignment in all_assignments(circuit):
            vec = [assignment[n] for n in circuit.inputs]
            for out in circuit.outputs:
                assert (bdds[out].evaluate(vec)
                        == circuit.evaluate(assignment)[out])

    def test_contains(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        assert "s" in bdds and "nope" not in bdds

    def test_custom_var_order(self, full_adder_circuit):
        order = list(reversed(full_adder_circuit.inputs))
        bdds = build_node_bdds(full_adder_circuit, var_order=order)
        assert bdds.var_index[order[0]] == 0
        for assignment in all_assignments(full_adder_circuit):
            vec = [0] * len(order)
            for name, value in assignment.items():
                vec[bdds.var_index[name]] = value
            assert (bdds["s"].evaluate(vec)
                    == full_adder_circuit.evaluate(assignment)["s"])

    def test_bad_var_order_rejected(self, full_adder_circuit):
        with pytest.raises(ValueError):
            build_node_bdds(full_adder_circuit, var_order=["a", "b"])

    def test_constants(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("k")
        c.add_input("a")
        c.add_const("one", 1)
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.set_output("y")
        bdds = build_node_bdds(c)
        assert bdds["one"].is_true
        assert bdds["y"] == bdds["a"]


class TestSignalProbability:
    def test_uniform_inputs(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        # s = a xor b xor cin: probability 1/2; cout = majority: 1/2.
        assert bdds.signal_probability("s") == pytest.approx(0.5)
        assert bdds.signal_probability("cout") == pytest.approx(0.5)
        assert bdds.signal_probability("c1") == pytest.approx(0.25)

    def test_biased_inputs(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        p = bdds.signal_probability("c1", {"a": 1.0, "b": 1.0})
        assert p == pytest.approx(1.0)

    def test_matches_exhaustive_simulation(self):
        circuit = parity_tree(8)
        bdds = build_node_bdds(circuit)
        sim = signal_probabilities(circuit)
        for node in circuit.topological_order():
            assert bdds.signal_probability(node) == pytest.approx(sim[node])


class TestJointProbability:
    def test_joint_of_independent(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        a = bdds["a"]
        b = bdds["b"]
        assert joint_probability([a, b], [1, 1]) == pytest.approx(0.25)

    def test_joint_of_correlated(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        # t = a xor b, c1 = a and b: t=1 and c1=1 is impossible.
        assert joint_probability(
            [bdds["t"], bdds["c1"]], [1, 1]) == pytest.approx(0.0)

    def test_joint_sums_to_one(self, full_adder_circuit):
        bdds = build_node_bdds(full_adder_circuit)
        fns = [bdds["t"], bdds["cin"]]
        total = sum(joint_probability(fns, [v & 1, (v >> 1) & 1])
                    for v in range(4))
        assert total == pytest.approx(1.0)

    def test_empty_joint(self):
        assert joint_probability([], []) == 1.0
