"""Tests for the XOR-hash approximate model counter (repro.sat.counting).

Ground truth comes from exhaustive bit-parallel simulation of the cone
(exact integer counts).  The exact-enumeration arms must match truth
bit-for-bit; the XOR-hash arm must land within the documented
``1 + epsilon`` multiplicative bound (counts are deterministic given a
seed, so these are not flaky assertions).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitBuilder
from repro.circuit.analysis import input_support
from repro.circuits import (
    get_benchmark,
    list_benchmarks,
    parity_tree,
    random_circuit,
)
from repro.sat import (
    Cnf,
    ConeCounter,
    SolverBudgetExceeded,
    XorHashCounter,
    count_cone_models,
)
from repro.sat.counting import _affine_points, _solve_affine
from repro.sim import patterns
from repro.sim.simulator import exhaustive_simulate

EPSILON = 0.8
FACTOR = 1.0 + EPSILON


def exact_count(circuit, node, value=True):
    """Truth: input vectors of ``circuit`` driving ``node`` to ``value``."""
    m = len(circuit.inputs)
    pack = exhaustive_simulate(circuit)[node]
    ones = patterns.masked_popcount(pack, 1 << m)
    return ones if value else (1 << m) - ones


def counting_target(circuit, max_support=22):
    """The gate with the widest cone still exhaustible for ground truth."""
    support = input_support(circuit)
    best, best_m = None, -1
    for gate in circuit.topological_gates():
        m = len(support[gate])
        if best_m < m <= max_support:
            best, best_m = gate, m
    assert best is not None
    return best


class TestAffineAlgebra:
    @given(st.integers(1, 5), st.data())
    @settings(max_examples=60, deadline=None)
    def test_solutions_match_brute_force(self, n, data):
        n_rows = data.draw(st.integers(0, n + 2))
        rows = [(data.draw(st.integers(0, (1 << n) - 1)),
                 data.draw(st.integers(0, 1))) for _ in range(n_rows)]
        truth = set()
        for x in range(1 << n):
            if all(bin(x & mask).count("1") % 2 == parity
                   for mask, parity in rows):
                truth.add(x)
        sol = _solve_affine(rows, n)
        if sol is None:
            assert truth == set()
            return
        x0, basis = sol
        pts = _affine_points(x0, basis)
        got = {int(sum(int(p[i]) << i for i in range(n))) for p in pts}
        assert got == truth


class TestExactArms:
    def test_c17_all_nodes_exact(self):
        circuit = get_benchmark("c17")
        for gate in circuit.gates:
            cone = circuit.cone(gate)
            res = count_cone_models(circuit, gate)
            assert res.exact
            assert res.count == exact_count(cone, gate)

    def test_primary_input(self):
        circuit = get_benchmark("c17")
        res = count_cone_models(circuit, circuit.inputs[0])
        assert res.exact and res.count == 1.0 and res.projection == 1

    def test_joint_conditions(self):
        circuit = get_benchmark("fig2")
        counter = ConeCounter(circuit)
        values = exhaustive_simulate(circuit)
        m = len(circuit.inputs)
        a, b = circuit.gates[0], circuit.gates[-1]
        truth = patterns.masked_popcount(values[a] & ~values[b], 1 << m)
        got = counter.count({a: True, b: False})
        assert got.exact and got.count == truth
        assert counter.probability({a: True, b: False}) == \
            truth / float(1 << m)

    def test_unsat_condition_counts_zero(self):
        b = CircuitBuilder("contradiction")
        x = b.input("x")
        y = b.and_(x, b.not_(x))
        b.outputs(y=y)
        circuit = b.build()
        counter = ConeCounter(circuit)
        res = counter.count({"y": True})
        assert res.exact and res.count == 0.0
        assert counter.probability({"y": True}) == 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_small_circuits_exact(self, seed):
        circuit = random_circuit(n_inputs=5, n_gates=12, n_outputs=2,
                                 seed=seed)
        out = circuit.outputs[0]
        cone = circuit.cone(out)
        res = count_cone_models(circuit, out)
        assert res.exact
        assert res.count == exact_count(cone, out)


class TestXorHashArm:
    def test_parity_tree_within_bound(self):
        circuit = parity_tree(18)
        out = circuit.outputs[0]
        truth = float(1 << 17)  # parity is balanced
        res = count_cone_models(circuit, out, seed=7)
        assert not res.exact
        assert res.trials >= 3
        assert truth / FACTOR <= res.count <= truth * FACTOR

    def test_deterministic_given_seed(self):
        circuit = parity_tree(18)
        out = circuit.outputs[0]
        a = count_cone_models(circuit, out, seed=5)
        b = count_cone_models(circuit, out, seed=5)
        assert a.count == b.count and a.trials == b.trials

    @pytest.mark.parametrize("name", sorted(list_benchmarks()))
    def test_catalog_counts_within_bound(self, name):
        """All 18 catalog circuits: widest exhaustible cone vs truth."""
        circuit = get_benchmark(name)
        gate = counting_target(circuit)
        cone = circuit.cone(gate)
        truth = exact_count(cone, gate)
        res = count_cone_models(circuit, gate, seed=11)
        if res.exact:
            assert res.count == truth
        else:
            assert truth / FACTOR <= res.count <= truth * FACTOR

    def test_exact_flag_consistency(self):
        # <= pivot models stay exact even above the enumeration width
        b = CircuitBuilder("narrow")
        xs = [b.input(f"x{i}") for i in range(18)]
        acc = xs[0]
        for x in xs[1:]:
            acc = b.and_(acc, x)  # exactly one model of acc=1
        b.outputs(y=acc)
        res = count_cone_models(b.build(), "y")
        assert res.exact and res.count == 1.0


class TestBudget:
    def test_budget_exhaustion_raises(self):
        circuit = parity_tree(18)
        counter = ConeCounter(circuit.cone(circuit.outputs[0]),
                              max_conflicts=0)
        with pytest.raises(SolverBudgetExceeded) as exc:
            counter.count({circuit.outputs[0]: True})
        assert exc.value.max_conflicts == 0
        assert exc.value.conflicts >= 1
        assert "max_conflicts" in str(exc.value)


class TestRawCnfCounter:
    def brute_force(self, cnf, proj):
        """Distinct projection assignments extending to a model."""
        seen = set()
        n = cnf.num_vars
        for bits in range(1 << n):
            assign = [False] + [bool((bits >> i) & 1) for i in range(n)]
            if cnf.evaluate(assign):
                seen.add(tuple(assign[v] for v in proj))
        return len(seen)

    def test_projected_count_no_batch_eval(self):
        cnf = Cnf(num_vars=6)
        cnf.add_clause([1, 2])
        cnf.add_clause([-3, 4])
        cnf.add_clause([5, -6, 1])
        proj = [1, 2, 3, 4]
        counter = XorHashCounter(cnf, proj, seed=3)
        res = counter.count()
        assert res.exact
        assert res.count == self.brute_force(cnf, proj)

    def test_validation(self):
        cnf = Cnf(num_vars=2)
        with pytest.raises(ValueError):
            XorHashCounter(cnf, [])
        with pytest.raises(ValueError):
            XorHashCounter(cnf, [1], epsilon=0.0)
        with pytest.raises(ValueError):
            XorHashCounter(cnf, [1], delta=1.5)
