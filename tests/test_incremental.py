"""Tests for the incremental analysis subsystem (docs/incremental.md).

Covers the typed edit log, the dirty-cone/recount machinery's parity
guarantee (bit-identical to from-scratch analysis after every edit, on
every catalog circuit, in both correlation modes), the patch-vs-relower
plan ladder, workspace forking, and the engine's ``edit`` / ``reanalyze``
session requests including the serve byte-match guarantee.
"""

import json
import random

import pytest

from repro.circuit import Circuit, CircuitError, GateType
from repro.circuits import get_benchmark, list_benchmarks
from repro.engine import AnalysisEngine, serve_stream
from repro.incremental import (
    AddGate,
    CircuitWorkspace,
    RemoveGate,
    SetEps,
    SwapGate,
    Triplicate,
    edit_to_dict,
    parse_edit,
)
from repro.reliability import SinglePassAnalyzer

OPTS = {"weights": "sampled", "n_patterns": 1 << 10}

#: Gate types interchangeable at any arity >= 2 (for random swaps).
SWAPPABLE = (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR)


def assert_parity(ws, abs_tol=1e-10):
    """Workspace results must match a from-scratch analysis of the
    mutated circuit built with the same weight configuration."""
    for mode in (False, True):
        fresh = SinglePassAnalyzer(
            ws.circuit, weight_method=ws.weight_method,
            n_patterns=ws.n_patterns, seed=ws.seed,
            use_correlation=mode,
            max_correlation_pairs=ws.max_correlation_pairs,
            max_correlation_level_gap=ws.max_correlation_level_gap)
        want = fresh.run(ws.current_eps())
        got = ws.analyze(use_correlation=mode)
        for out, delta in want.per_output.items():
            assert got.per_output[out] == pytest.approx(delta, abs=abs_tol), \
                f"output {out} diverged in mode correlation={mode}"


class TestEditRecords:
    @pytest.mark.parametrize("edit", [
        SetEps(0.1),
        SetEps(0.2, gate="g1"),
        SwapGate("g1", "nor"),
        SwapGate("g1", GateType.NAND, fanins=("a", "b")),
        AddGate("g9", "and", ("a", "b")),
        AddGate("g9", "xor", ("a", "b"), output=True, eps=0.01),
        RemoveGate("g9"),
        Triplicate(("g1", "g2")),
        Triplicate(("g1",), voter_eps=0.001),
    ])
    def test_dict_round_trip(self, edit):
        assert parse_edit(edit_to_dict(edit)) == edit

    def test_typed_edit_passes_through(self):
        edit = SetEps(0.1)
        assert parse_edit(edit) is edit

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            parse_edit({"kind": "resize_gate", "gate": "g1"})

    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError, match="bad 'set_eps' edit"):
            parse_edit({"kind": "set_eps", "nonsense": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            parse_edit(["set_eps", 0.1])

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(ValueError, match="unknown gate type"):
            SwapGate("g1", "tri-state")


class TestWorkspaceValidation:
    def test_bdd_weights_rejected(self, full_adder_circuit):
        with pytest.raises(ValueError, match="bdd"):
            CircuitWorkspace(full_adder_circuit, weight_method="bdd")

    def test_bad_compiled_rejected(self, full_adder_circuit):
        with pytest.raises(ValueError, match="compiled"):
            CircuitWorkspace(full_adder_circuit, compiled="always")

    def test_eps_out_of_range(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(ValueError, match="outside"):
            ws.apply(SetEps(0.7))

    def test_eps_on_input_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(ValueError, match="non-gate"):
            ws.apply(SetEps(0.1, gate="a"))

    def test_swap_input_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(CircuitError, match="non-gate"):
            ws.apply(SwapGate("a", "nand"))

    def test_remove_driving_gate_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(CircuitError, match="still drives"):
            ws.apply(RemoveGate("t"))

    def test_remove_output_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(CircuitError, match="primary output"):
            ws.apply(RemoveGate("cout"))

    def test_add_input_type_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(CircuitError, match="logic gate"):
            ws.apply(AddGate("x", "input", ()))

    def test_empty_triplicate_rejected(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        with pytest.raises(ValueError, match="at least one"):
            ws.apply(Triplicate(()))

    def test_failed_edit_leaves_state_intact(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit, eps=0.05)
        before = dict(ws.analyze().per_output)
        with pytest.raises(CircuitError):
            # Forward reference: 'cout' is defined after 't'.
            ws.apply(SwapGate("t", "and", fanins=("cout", "a")))
        assert ws.edit_log == []
        assert dict(ws.analyze().per_output) == before


class TestPlanLadder:
    def test_set_eps_reuses_plans(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        ws.analyze()  # builds the correlated plan
        report = ws.apply(SetEps(0.02))
        assert report.dirty_nodes == 0 and report.reweighted_gates == 0
        assert report.plans == {"plain": "unbuilt", "correlated": "reused"}
        assert_parity(ws)

    def test_type_only_swap_patches_plain_plan(self, reconvergent_circuit):
        ws = CircuitWorkspace(reconvergent_circuit)
        ws.analyze(use_correlation=False)  # builds the plain plan
        report = ws.apply(SwapGate("g2", "nor"))
        assert report.plans["plain"] == "patched"
        assert report.plans["correlated"] == "unbuilt"
        # g2's own weight vector survives; the cone downstream recounts.
        assert report.dirty_nodes == 4   # g2, g4, g5, g6
        assert report.reweighted_gates == 3
        assert_parity(ws)

    def test_rewired_swap_relowers(self, reconvergent_circuit):
        ws = CircuitWorkspace(reconvergent_circuit)
        ws.analyze(use_correlation=False)
        ws.analyze(use_correlation=True)
        report = ws.apply(SwapGate("g4", "nand", fanins=("g1", "i3")))
        assert report.plans == {"plain": "relowered",
                                "correlated": "relowered"}
        assert_parity(ws)

    def test_noop_swap_touches_nothing(self, reconvergent_circuit):
        ws = CircuitWorkspace(reconvergent_circuit)
        node = ws.circuit.node("g2")
        report = ws.apply(SwapGate("g2", node.gate_type))
        assert report.dirty_nodes == 0
        assert ws.edit_log[-1].kind == "swap_gate"
        assert_parity(ws)

    def test_structural_edits_drop_plans(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit)
        ws.analyze()
        report = ws.apply(AddGate("extra", "nand", ("t", "cin"),
                                  output=True))
        assert report.plans["correlated"] == "relowered"
        assert "extra" in ws.circuit.outputs
        assert_parity(ws)
        report = ws.apply(Triplicate(("c1",), voter_eps=0.001))
        assert report.plans["correlated"] == "relowered"
        assert_parity(ws)

    def test_add_then_remove_round_trips(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit, eps=0.04)
        baseline = dict(ws.analyze().per_output)
        ws.apply(AddGate("scratch", "and", ("a", "b"), eps=0.2))
        assert_parity(ws)
        ws.apply(RemoveGate("scratch"))
        assert "scratch" not in ws.current_eps()
        assert dict(ws.analyze().per_output) == baseline
        assert_parity(ws)


class TestEpsState:
    def test_triplicate_installs_hardened_eps(self, full_adder_circuit):
        ws = CircuitWorkspace(full_adder_circuit, eps=0.05)
        ws.apply(SetEps(0.2, gate="c1"))
        ws.apply(Triplicate(("c1",), voter_eps=0.001))
        eps = ws.current_eps()
        # Copies inherit the protected gate's eps, the voter gets its own.
        # c1 was AND(a, b); its three fresh-named copies replicate it.
        copies = [g for g in ws.circuit.topological_gates()
                  if g.startswith("tmr")
                  and ws.circuit.fanins(g) == ("a", "b")]
        assert len(copies) == 3
        assert all(eps[c] == 0.2 for c in copies)
        assert eps["c1"] == 0.001  # the voter reclaims the name
        assert_parity(ws)

    def test_default_and_per_gate_updates(self, tree_circuit):
        ws = CircuitWorkspace(tree_circuit, eps=0.05)
        ws.apply(SetEps(0.01))
        ws.apply(SetEps(0.3, gate="top"))
        eps = ws.current_eps()
        assert eps["default"] == 0.01 and eps["top"] == 0.3
        assert_parity(ws)


class TestFork:
    def test_fork_is_isolated(self, reconvergent_circuit):
        ws = CircuitWorkspace(reconvergent_circuit, eps=0.05)
        ws.analyze(use_correlation=False)
        before = dict(ws.analyze().per_output)
        fork = ws.fork()
        fork.apply(SwapGate("g2", "nor"))
        fork.apply(Triplicate(("g1",)))
        assert_parity(fork)
        # The parent never noticed.
        assert ws.edit_log == []
        assert ws.circuit.num_gates == reconvergent_circuit.num_gates
        assert dict(ws.analyze().per_output) == before

    def test_fork_carries_edit_log(self, reconvergent_circuit):
        ws = CircuitWorkspace(reconvergent_circuit)
        ws.apply(SetEps(0.1))
        fork = ws.fork()
        fork.apply(SetEps(0.2))
        assert [e.kind for e in fork.edit_log] == ["set_eps", "set_eps"]
        assert len(ws.edit_log) == 1


def _random_edits(ws, rng):
    """A deterministic mixed edit sequence for one catalog circuit."""
    order = ws.circuit.topological_order()
    gates = ws.circuit.topological_gates()
    edits = [SetEps(0.11)]
    swap_pool = [g for g in gates
                 if len(ws.circuit.fanins(g)) >= 2
                 and ws.circuit.node(g).gate_type in SWAPPABLE]
    if swap_pool:
        g = rng.choice(swap_pool)
        cur = ws.circuit.node(g).gate_type
        edits.append(SwapGate(
            g, rng.choice([t for t in SWAPPABLE if t is not cur])))
        # Rewire another gate to two nodes defined earlier than itself
        # (skipped on the largest circuits to bound the from-scratch
        # reference cost; the patch-vs-relower paths are identical).
        g2 = rng.choice(swap_pool)
        idx = order.index(g2)
        if idx >= 2 and len(gates) <= 1000:
            f1, f2 = rng.sample(order[:idx], 2)
            edits.append(SwapGate(g2, "nand", fanins=(f1, f2)))
    edits.append(Triplicate((rng.choice(gates),), voter_eps=0.002))
    f1, f2 = rng.sample(order, 2)
    edits.append(AddGate("ws_added", "nor", (f1, f2), output=True))
    edits.append(SetEps(0.09, gate="ws_added"))
    return edits


@pytest.mark.parametrize("name", list_benchmarks())
def test_randomized_edit_sequence_parity(name):
    """After every edit the workspace matches a from-scratch analysis of
    the mutated circuit — in plain AND correlation-corrected mode."""
    circuit = get_benchmark(name)
    gap = (2 if circuit.num_gates > 1000
           else 4 if circuit.num_gates > 200 else None)
    max_pairs = 100_000 if circuit.num_gates > 1500 else 1_000_000
    ws = CircuitWorkspace(circuit, eps=0.05, weight_method="sampled",
                          n_patterns=1 << 10, seed=7,
                          max_correlation_pairs=max_pairs,
                          max_correlation_level_gap=gap)
    rng = random.Random(f"incremental-{name}")
    for edit in _random_edits(ws, rng):
        ws.apply(edit)
        assert_parity(ws)


def _with_swapped(circuit, gate, gate_type):
    """The mutated circuit built from scratch (for byte-match tests)."""
    out = Circuit(circuit.name)
    for node in circuit:
        if node.gate_type.is_input:
            out.add_input(node.name)
        elif node.gate_type.is_constant:
            out.add_const(node.name,
                          1 if node.gate_type is GateType.CONST1 else 0)
        else:
            gt = gate_type if node.name == gate else node.gate_type
            out.add_gate(node.name, gt, node.fanins)
    for o in circuit.outputs:
        out.set_output(o)
    return out


class TestEngineEditSessions:
    @pytest.fixture()
    def engine(self):
        with AnalysisEngine(max_sessions=4) as eng:
            yield eng

    def test_edit_envelope(self, engine):
        env = engine.submit({
            "id": 3, "op": "edit", "session": "s1", "circuit": "c17",
            "edits": [{"kind": "set_eps", "eps": 0.1}],
            "options": OPTS}).to_dict()
        assert env["ok"] and env["id"] == 3
        assert env["method"] == "incremental"
        assert env["result"]["command"] == "edit"
        assert env["result"]["session"] == "s1"
        assert env["result"]["reports"][0]["kind"] == "set_eps"
        assert env["result"]["eps"]["default"] == 0.1
        assert engine.stats()["edit_sessions"] == 1

    def test_analyze_after_edit_byte_matches_one_shot(self, engine):
        r = engine.submit({"op": "edit", "session": "s1", "circuit": "c17",
                           "edits": [{"kind": "swap_gate", "gate": "10",
                                      "gate_type": "nor"}],
                           "options": OPTS})
        assert r.ok, r.error
        warm = engine.submit({"op": "analyze", "session": "s1",
                              "eps": 0.05})
        mutated = _with_swapped(get_benchmark("c17"), "10", GateType.NOR)
        one_shot = engine.submit({"op": "analyze", "circuit": mutated,
                                  "eps": 0.05, "options": OPTS})
        assert warm.ok and one_shot.ok
        assert json.dumps(warm.result) == json.dumps(one_shot.result)

    def test_sweep_after_edit_byte_matches_one_shot(self, engine):
        engine.submit({"op": "edit", "session": "s2", "circuit": "c17",
                       "edits": [{"kind": "swap_gate", "gate": "22",
                                  "gate_type": "and"}],
                       "options": OPTS})
        warm = engine.submit({"op": "sweep", "session": "s2",
                              "eps": [0.01, 0.05, 0.1]})
        mutated = _with_swapped(get_benchmark("c17"), "22", GateType.AND)
        one_shot = engine.submit({"op": "sweep", "circuit": mutated,
                                  "eps": [0.01, 0.05, 0.1],
                                  "options": OPTS})
        assert warm.ok and one_shot.ok
        assert json.dumps(warm.result) == json.dumps(one_shot.result)

    def test_reanalyze_uses_workspace_eps(self, engine):
        engine.submit({"op": "edit", "session": "s3", "circuit": "c17",
                       "edits": [{"kind": "set_eps", "eps": 0.07}],
                       "options": OPTS})
        env = engine.submit({"op": "reanalyze", "session": "s3"}).to_dict()
        assert env["ok"], env.get("error")
        point = env["result"]["points"][0]
        assert point["eps"]["default"] == 0.07

    def test_edit_requires_session(self, engine):
        env = engine.submit({"op": "edit", "circuit": "c17",
                             "edits": [{"kind": "set_eps", "eps": 0.1}]
                             }).to_dict()
        assert not env["ok"] and "session" in env["error"]

    def test_unknown_session_without_circuit(self, engine):
        env = engine.submit({"op": "analyze", "session": "nope",
                             "eps": 0.05}).to_dict()
        assert not env["ok"] and "unknown session" in env["error"]

    def test_empty_edits_rejected(self, engine):
        env = engine.submit({"op": "edit", "session": "s4",
                             "circuit": "c17", "edits": [],
                             "options": OPTS}).to_dict()
        assert not env["ok"] and "non-empty" in env["error"]

    def test_serve_stream_edit_session(self, engine):
        import io
        lines = [
            json.dumps({"id": 1, "op": "edit", "session": "tuned",
                        "circuit": "c17",
                        "edits": [{"kind": "triplicate", "gates": ["22"],
                                   "voter_eps": 0.001}],
                        "options": OPTS}),
            json.dumps({"id": 2, "op": "reanalyze", "session": "tuned"}),
        ]
        out = io.StringIO()
        served = serve_stream(engine, io.StringIO("\n".join(lines) + "\n"),
                              out)
        envelopes = [json.loads(l) for l in out.getvalue().splitlines()]
        assert served == 2
        assert all(e["ok"] for e in envelopes)
        assert envelopes[0]["result"]["reports"][0]["kind"] == "triplicate"
        assert envelopes[1]["result"]["points"]
