"""Tests for the single-pass reliability analysis (paper Sec. 4)."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, fig2_circuit, parity_tree
from repro.probability import ErrorProbability
from repro import analyze
from repro.reliability import (
    SinglePassAnalyzer,
    exhaustive_exact_reliability,
)


class TestExactnessOnTrees:
    """Paper Sec. 4: 'single-pass reliability analysis gives the exact
    values of probability of error at the output in the absence of
    reconvergent fanout'."""

    @pytest.mark.parametrize("eps", [0.0, 0.01, 0.1, 0.25, 0.5])
    def test_fixture_tree(self, tree_circuit, eps):
        sp = analyze(tree_circuit, eps).delta()
        exact = exhaustive_exact_reliability(tree_circuit, eps).delta()
        assert sp == pytest.approx(exact, abs=1e-12)

    @pytest.mark.parametrize("eps", [0.05, 0.2])
    def test_parity_tree(self, eps):
        circuit = parity_tree(8)
        sp = analyze(circuit, eps).delta()
        # XOR tree: every gate fully observable; delta = (1-(1-2e)^n)/2.
        n = circuit.num_gates
        expected = 0.5 * (1 - (1 - 2 * eps) ** n)
        assert sp == pytest.approx(expected, abs=1e-12)

    def test_per_gate_eps_on_tree(self, tree_circuit):
        eps = {g: 0.02 * (i + 1)
               for i, g in enumerate(tree_circuit.topological_gates())}
        sp = analyze(tree_circuit, eps).delta()
        exact = exhaustive_exact_reliability(tree_circuit, eps).delta()
        assert sp == pytest.approx(exact, abs=1e-12)


class TestWorkedExample:
    """Fig. 2-style worked example: hand-checkable intermediate values."""

    def test_first_gate_uniform_weights(self):
        circuit = fig2_circuit()
        analyzer = SinglePassAnalyzer(circuit, weight_method="exhaustive")
        import numpy as np
        np.testing.assert_allclose(analyzer.weights.weights["n1"],
                                   [0.25] * 4)

    def test_first_level_gate_error_probability(self):
        # n1 = AND(a, b), noise-free inputs: Pr(n1_any) = eps both ways.
        circuit = fig2_circuit()
        result = analyze(circuit, 0.1,
                                         weight_method="exhaustive")
        ep = result.node_errors["n1"]
        assert ep.p01 == pytest.approx(0.1)
        assert ep.p10 == pytest.approx(0.1)

    def test_delta_against_exact(self):
        circuit = fig2_circuit()
        for eps in (0.05, 0.1, 0.2):
            exact = exhaustive_exact_reliability(circuit, eps).delta()
            sp = analyze(circuit, eps).delta()
            assert sp == pytest.approx(exact, abs=0.02)

    def test_node_delta_accessor(self):
        circuit = fig2_circuit()
        result = analyze(circuit, 0.1)
        d = result.node_delta("n1")
        assert d == pytest.approx(0.1)


class TestReconvergence:
    def test_correlation_beats_independence(self, reconvergent_circuit):
        for eps in (0.05, 0.15):
            exact = exhaustive_exact_reliability(
                reconvergent_circuit, eps).delta()
            corr = analyze(
                reconvergent_circuit, eps, use_correlation=True).delta()
            indep = analyze(
                reconvergent_circuit, eps, use_correlation=False).delta()
            assert abs(corr - exact) <= abs(indep - exact)

    def test_c17_accuracy(self):
        circuit = c17()
        analyzer = SinglePassAnalyzer(circuit)
        for eps in (0.05, 0.15, 0.3):
            exact = exhaustive_exact_reliability(circuit, eps)
            result = analyzer.run(eps)
            for out in circuit.outputs:
                assert result.per_output[out] == pytest.approx(
                    exact.per_output[out], abs=0.02)


class TestInterface:
    def test_multi_output(self, full_adder_circuit):
        result = analyze(full_adder_circuit, 0.1)
        assert set(result.per_output) == {"s", "cout"}
        with pytest.raises(ValueError):
            result.delta()
        assert result.delta("s") == result.per_output["s"]

    def test_zero_eps_gives_zero_delta(self, full_adder_circuit):
        result = analyze(full_adder_circuit, 0.0)
        assert all(v == 0.0 for v in result.per_output.values())

    def test_eps_validation(self, tree_circuit):
        analyzer = SinglePassAnalyzer(tree_circuit)
        with pytest.raises(ValueError):
            analyzer.run(0.9)

    def test_weights_reused_across_runs(self, full_adder_circuit):
        analyzer = SinglePassAnalyzer(full_adder_circuit)
        weights_id = id(analyzer.weights)
        analyzer.run(0.1)
        analyzer.run(0.2)
        assert id(analyzer.weights) == weights_id

    def test_curve_monotone_near_zero(self, tree_circuit):
        analyzer = SinglePassAnalyzer(tree_circuit)
        curve = analyzer.curve([0.0, 0.05, 0.1])
        assert curve[0.0] == 0.0 < curve[0.05] < curve[0.1]

    def test_input_errors_initial_conditions(self):
        # A single buffer with a noisy input: delta equals the input error.
        b = CircuitBuilder("wire")
        a = b.input("a")
        b.outputs(b.buf(a, name="y"))
        circuit = b.build()
        result = analyze(
            circuit, 0.0,
            input_errors={"a": ErrorProbability(p01=0.2, p10=0.1)})
        # P(a=1) = 0.5: delta = 0.5*0.2 + 0.5*0.1
        assert result.delta() == pytest.approx(0.15)

    def test_input_errors_combine_with_gate_noise(self):
        b = CircuitBuilder("wire2")
        a = b.input("a")
        b.outputs(b.buf(a, name="y"))
        circuit = b.build()
        result = analyze(
            circuit, 0.1,
            input_errors={"a": ErrorProbability(p01=0.2, p10=0.2)})
        # error iff exactly one of {input error, gate flip}: 0.2*0.9+0.8*0.1
        assert result.delta() == pytest.approx(0.2 * 0.9 + 0.8 * 0.1)

    def test_all_gate_types_run(self):
        b = CircuitBuilder("zoo")
        a, c, d = b.inputs("a", "c", "d")
        g = b.xnor(b.nor(a, c), b.nand(c, d))
        g = b.xor(g, b.or_(a, d))
        g = b.and_(g, b.not_(c))
        b.outputs(b.buf(g, name="y"))
        circuit = b.build()
        result = analyze(circuit, 0.1)
        exact = exhaustive_exact_reliability(circuit, 0.1)
        assert result.delta() == pytest.approx(exact.delta(), abs=0.03)

    def test_delta_in_unit_interval(self, reconvergent_circuit):
        for eps in (0.0, 0.1, 0.3, 0.5):
            result = analyze(reconvergent_circuit, eps)
            for v in result.per_output.values():
                assert 0.0 <= v <= 1.0

    def test_saturation_at_half_for_noisy_observable_chain(self):
        circuit = parity_tree(16)
        result = analyze(circuit, 0.5)
        assert result.delta() == pytest.approx(0.5)
