"""Tests for the function-preserving restructuring transforms."""

import numpy as np
import pytest

from repro.circuit import (
    CircuitBuilder,
    GateType,
    map_to_nand,
    rebalance_chains,
)
from repro.circuits import random_circuit, ripple_carry_adder
from repro.reliability import exhaustive_exact_reliability
from tests.conftest import all_assignments


def equivalent(c1, c2, n_random=0) -> bool:
    if set(c1.outputs) != set(c2.outputs):
        return False
    if n_random:
        rng = np.random.default_rng(0)
        for _ in range(n_random):
            assignment = {name: int(rng.integers(2)) for name in c1.inputs}
            if c1.evaluate_outputs(assignment) != c2.evaluate_outputs(
                    assignment):
                return False
        return True
    for assignment in all_assignments(c1):
        if c1.evaluate_outputs(assignment) != c2.evaluate_outputs(assignment):
            return False
    return True


def chain_circuit(n_leaves, op="and_"):
    b = CircuitBuilder(f"chain_{op}{n_leaves}")
    xs = b.input_bus("x", n_leaves)
    acc = xs[0]
    for x in xs[1:]:
        acc = getattr(b, op)(acc, x)
    b.outputs(acc)
    return b.build()


class TestRebalanceChains:
    @pytest.mark.parametrize("op", ["and_", "or_", "xor"])
    def test_function_preserved(self, op):
        circuit = chain_circuit(7, op)
        balanced = rebalance_chains(circuit)
        assert equivalent(circuit, balanced)

    def test_depth_reduced_gate_count_unchanged(self):
        circuit = chain_circuit(8)
        balanced = rebalance_chains(circuit)
        assert balanced.num_gates == circuit.num_gates
        assert balanced.depth == 3
        assert circuit.depth == 7

    def test_fanout_stems_not_absorbed(self):
        b = CircuitBuilder("stem")
        xs = b.input_bus("x", 4)
        mid = b.and_(b.and_(xs[0], xs[1]), xs[2])  # chain candidate
        top = b.and_(mid, xs[3])
        side = b.not_(mid)  # mid has fanout 2: must not be absorbed
        b.outputs(top, side)
        circuit = b.build()
        balanced = rebalance_chains(circuit)
        assert equivalent(circuit, balanced)
        assert mid in balanced  # preserved as a named node

    def test_mixed_types_not_merged(self):
        b = CircuitBuilder("mixed")
        xs = b.input_bus("x", 4)
        acc = b.and_(b.or_(xs[0], xs[1]), b.or_(xs[2], xs[3]))
        b.outputs(acc)
        circuit = b.build()
        balanced = rebalance_chains(circuit)
        assert equivalent(circuit, balanced)
        assert balanced.num_gates == circuit.num_gates

    def test_random_circuits_preserved(self):
        for seed in range(3):
            circuit = random_circuit(6, 25, 3, seed=seed)
            balanced = rebalance_chains(circuit)
            assert equivalent(circuit, balanced)

    def test_improves_reliability_of_chains(self):
        # The Fig. 8 effect as a transform: balanced == more reliable.
        circuit = chain_circuit(8)
        balanced = rebalance_chains(circuit)
        eps = 0.05
        deep = exhaustive_exact_reliability(circuit, eps).delta()
        shallow = exhaustive_exact_reliability(balanced, eps).delta()
        assert shallow < deep


class TestMapToNand:
    def test_function_preserved_small(self, full_adder_circuit):
        mapped = map_to_nand(full_adder_circuit)
        assert equivalent(full_adder_circuit, mapped)

    def test_only_nand_gates(self, full_adder_circuit):
        mapped = map_to_nand(full_adder_circuit)
        for gate in mapped.gates:
            node = mapped.node(gate)
            if node.gate_type is GateType.BUF:
                continue  # output-name buffers survive stripping
            assert node.gate_type is GateType.NAND
            assert node.arity == 2

    def test_wide_gates(self):
        b = CircuitBuilder("wide")
        xs = b.input_bus("x", 5)
        b.outputs(b.gate(GateType.NOR, *xs, name="y"),
                  b.gate(GateType.XNOR, xs[0], xs[1], xs[2], name="z"))
        circuit = b.build()
        mapped = map_to_nand(circuit)
        assert equivalent(circuit, mapped)

    def test_random_circuits(self):
        for seed in range(3):
            circuit = random_circuit(5, 20, 3, seed=seed + 10)
            mapped = map_to_nand(circuit)
            assert equivalent(circuit, mapped)

    def test_adder_roundtrip(self):
        circuit = ripple_carry_adder(3)
        mapped = map_to_nand(circuit)
        assert equivalent(circuit, mapped, n_random=40)

    def test_reliability_cost_of_mapping(self, full_adder_circuit):
        # More (noisy) gates computing the same function: delta grows.
        mapped = map_to_nand(full_adder_circuit)
        assert mapped.num_gates > full_adder_circuit.num_gates
        eps = 0.02
        base = exhaustive_exact_reliability(full_adder_circuit, eps)
        cost = exhaustive_exact_reliability(mapped, eps)
        for out in full_adder_circuit.outputs:
            assert cost.per_output[out] > base.per_output[out]
