"""Tests for the structural Verilog writer."""

from repro.circuit import Circuit, CircuitBuilder, GateType
from repro.io import dumps_verilog, save_verilog


class TestVerilogWriter:
    def test_module_structure(self, full_adder_circuit):
        text = dumps_verilog(full_adder_circuit)
        assert text.startswith("module fa (")
        assert text.rstrip().endswith("endmodule")
        assert "input a;" in text
        assert "output s;" in text
        assert "output cout;" in text

    def test_gate_expressions(self, full_adder_circuit):
        text = dumps_verilog(full_adder_circuit)
        assert "assign t = a ^ b;" in text
        assert "assign cout = c1 | c2;" in text

    def test_inverting_gates_wrapped(self):
        b = CircuitBuilder("inv")
        a, c = b.inputs("a", "c")
        b.outputs(b.nand(a, c, name="y"), b.not_(a, name="z"))
        text = dumps_verilog(b.build())
        assert "assign y = ~(a & c);" in text
        assert "assign z = ~(a);" in text

    def test_constants(self):
        c = Circuit("k")
        c.add_input("a")
        c.add_const("one", 1)
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.set_output("y")
        text = dumps_verilog(c)
        assert "assign one = 1'b1;" in text

    def test_nonstandard_names_escaped(self):
        c = Circuit("esc")
        c.add_input("1")
        c.add_gate("2[0]", GateType.NOT, ["1"])
        c.set_output("2[0]")
        text = dumps_verilog(c)
        assert "\\1 " in text
        assert "\\2[0] " in text

    def test_save(self, tmp_path, tree_circuit):
        path = tmp_path / "tree.v"
        save_verilog(tree_circuit, path)
        assert path.read_text().startswith("module tree")

    def test_module_name_sanitized(self):
        c = Circuit("weird name!")
        c.add_input("a")
        c.add_gate("y", GateType.BUF, ["a"])
        c.set_output("y")
        assert "module weird_name_ (" in dumps_verilog(c)
