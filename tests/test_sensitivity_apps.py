"""Tests for sensitivity analysis and the Sec. 5.1 applications."""

import pytest

from repro.apps import (
    GateSerModel,
    asymmetric_targets,
    estimate_ser,
    explain_ranking,
    hardening_sweep,
    score_candidates,
    selective_tmr,
    uniform_ser_model,
)
from repro.circuits import get_benchmark, parity_tree, ripple_carry_adder
from repro.reliability import (
    ObservabilityModel,
    SinglePassAnalyzer,
    asymmetry_report,
    epsilon_map,
    rank_critical_gates,
    single_pass_sensitivities,
)


class TestSensitivity:
    def test_epsilon_map(self, tree_circuit):
        m = epsilon_map(tree_circuit, 0.1)
        assert set(m) == set(tree_circuit.topological_gates())
        assert all(v == 0.1 for v in m.values())

    def test_matches_closed_form_gradient_at_small_eps(self, tree_circuit):
        # The closed form is first-order exact, so its gradient matches the
        # (tree-exact) single-pass sensitivity in the eps -> 0 limit.
        analyzer = SinglePassAnalyzer(tree_circuit)
        sens = single_pass_sensitivities(analyzer, 1e-4, step=1e-6)
        model = ObservabilityModel(tree_circuit)
        grad = model.gradient(1e-4)
        for gate in tree_circuit.topological_gates():
            assert sens[gate] == pytest.approx(grad[gate], rel=0.02,
                                               abs=1e-4)

    def test_rank_critical_gates(self, tree_circuit):
        analyzer = SinglePassAnalyzer(tree_circuit)
        ranked = rank_critical_gates(analyzer, 0.05, top_k=3)
        assert len(ranked) == 3
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        # The output gate is maximally observable, hence most critical.
        assert ranked[0][0] == "top"

    def test_multi_output_mean_objective(self, full_adder_circuit):
        analyzer = SinglePassAnalyzer(full_adder_circuit)
        sens = single_pass_sensitivities(analyzer, 0.05)
        assert set(sens) == set(full_adder_circuit.topological_gates())

    def test_gates_subset(self, tree_circuit):
        analyzer = SinglePassAnalyzer(tree_circuit)
        sens = single_pass_sensitivities(analyzer, 0.05, gates=["top"])
        assert list(sens) == ["top"]

    def test_asymmetry_report(self, full_adder_circuit):
        analyzer = SinglePassAnalyzer(full_adder_circuit)
        report = asymmetry_report(analyzer, 0.1)
        assert set(report) == set(full_adder_circuit.topological_gates())
        for p01, p10 in report.values():
            assert 0 <= p01 <= 1 and 0 <= p10 <= 1


class TestSer:
    def test_per_cycle_epsilon_conversion(self):
        model = GateSerModel(upset_rate_per_sec=100.0)
        assert model.per_cycle_epsilon(1e9) == pytest.approx(1e-7)
        assert GateSerModel(1e12).per_cycle_epsilon(1.0) == 0.5  # clipped

    def test_report_scales_linearly_in_rate(self):
        circuit = parity_tree(4)
        low = estimate_ser(circuit, uniform_ser_model(circuit, 1e-12))
        high = estimate_ser(circuit, uniform_ser_model(circuit, 1e-10))
        out = circuit.outputs[0]
        ratio = (high.per_output_failure_probability[out]
                 / low.per_output_failure_probability[out])
        assert ratio == pytest.approx(100, rel=1e-3)

    def test_fit_consistency(self):
        circuit = parity_tree(4)
        report = estimate_ser(circuit, uniform_ser_model(circuit, 1e-10),
                              clock_hz=2e9)
        out = circuit.outputs[0]
        p = report.per_output_failure_probability[out]
        assert report.per_output_fit[out] == pytest.approx(
            p * 2e9 * 3600 * 1e9)

    def test_contributions_sum_close_to_total(self):
        # First-order: sum of contributions ~ delta for tiny eps.
        circuit = parity_tree(8)
        report = estimate_ser(circuit, uniform_ser_model(circuit, 1e-12))
        total = sum(report.gate_contributions.values())
        out = circuit.outputs[0]
        assert total == pytest.approx(
            report.per_output_failure_probability[out], rel=1e-3)

    def test_default_rate_for_missing_gates(self):
        circuit = parity_tree(4)
        report = estimate_ser(circuit, {}, default_rate=1e-12)
        out = circuit.outputs[0]
        assert report.per_output_failure_probability[out] > 0


class TestRedundancy:
    def test_selective_tmr_with_hardened_voters_improves(self):
        circuit = ripple_carry_adder(4)
        outcome = selective_tmr(circuit, 0.02, top_k=4,
                                voter_eps=0.002, evaluate="monte_carlo",
                                mc_patterns=1 << 15)
        assert outcome.mean_improvement > 0
        assert outcome.gate_overhead == 24
        assert len(outcome.hardened_gates) == 4

    def test_noisy_voters_hurt(self):
        # Honest physics: TMR with voters as noisy as the logic is a loss.
        circuit = ripple_carry_adder(3)
        outcome = selective_tmr(circuit, 0.05, top_k=2,
                                voter_eps=None, evaluate="monte_carlo",
                                mc_patterns=1 << 15)
        assert outcome.mean_improvement < 0.05

    def test_invalid_evaluate_rejected(self, tree_circuit):
        with pytest.raises(ValueError):
            selective_tmr(tree_circuit, 0.05, top_k=1, evaluate="vibes")

    def test_hardening_sweep_budgets(self):
        circuit = ripple_carry_adder(2)
        sweep = hardening_sweep(circuit, 0.02, [1, 2], voter_eps=0.002,
                                evaluate="monte_carlo")
        assert [k for k, _ in sweep] == [1, 2]
        assert sweep[1][1].gate_overhead > sweep[0][1].gate_overhead

    def test_shared_workspace_is_never_mutated(self):
        from repro.incremental import CircuitWorkspace

        circuit = ripple_carry_adder(2)
        ws = CircuitWorkspace(circuit, eps=0.02, seed=0)
        solo = selective_tmr(circuit, 0.02, top_k=2, voter_eps=0.002)
        shared = selective_tmr(circuit, 0.02, top_k=2, voter_eps=0.002,
                               workspace=ws)
        # Same ranking, same hardened circuit, same single-pass numbers —
        # sharing a baseline workspace changes cost, not results.
        assert shared.hardened_gates == solo.hardened_gates
        assert shared.gate_overhead == solo.gate_overhead
        for out, value in solo.hardened_delta.items():
            assert shared.hardened_delta[out] == pytest.approx(value,
                                                               abs=1e-12)
        # The candidate was evaluated on a fork; the baseline stays clean.
        assert ws.edit_log == []
        assert ws.circuit.num_gates == circuit.num_gates

    def test_asymmetric_targets_directions(self, full_adder_circuit):
        up = asymmetric_targets(full_adder_circuit, 0.1, "0to1", top_k=3)
        down = asymmetric_targets(full_adder_circuit, 0.1, "1to0", top_k=3)
        assert len(up) == 3 and len(down) == 3
        with pytest.raises(ValueError):
            asymmetric_targets(full_adder_circuit, 0.1, "sideways")


class TestExplorer:
    def test_shallow_variant_wins(self):
        low = get_benchmark("b9_low_fanout")
        high = get_benchmark("b9_high_fanout")
        scores = score_candidates([high, low], [0.0, 0.01, 0.02], seed=0,
                                  max_correlation_level_gap=6)
        assert scores[0].name == "b9_shallow"
        assert scores[0].area < scores[1].area

    def test_explain_ranking_mentions_levels(self):
        low = get_benchmark("b9_low_fanout")
        high = get_benchmark("b9_high_fanout")
        scores = score_candidates([high, low], [0.0, 0.01], seed=0,
                                  max_correlation_level_gap=6)
        text = explain_ranking(scores)
        assert "b9_shallow" in text
        assert "fewer total logic" in text

    def test_curve_area_of_zero_noise(self, two_output_circuit):
        scores = score_candidates([two_output_circuit], [0.0], seed=0)
        assert scores[0].area == 0.0
