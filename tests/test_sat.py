"""Tests for the SAT substrate: CNF encoding, CDCL solver, SAT ATPG."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitBuilder, are_equivalent
from repro.circuits import c17, fig2_circuit, random_circuit
from repro.sat import (
    Cnf,
    SatAtpg,
    SatSolver,
    SolverBudgetExceeded,
    encode_circuit,
    miter,
    sat_equivalent,
    solve_cnf,
)
from repro.testing import AtpgEngine, Fault, StuckAt, full_fault_list
from tests.conftest import all_assignments


class TestCnf:
    def test_clause_validation(self):
        cnf = Cnf(num_vars=2)
        with pytest.raises(ValueError):
            cnf.add_clause([])
        with pytest.raises(ValueError):
            cnf.add_clause([3])
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_evaluate(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, -2])
        assert cnf.evaluate([False, True, True])
        assert not cnf.evaluate([False, False, True])

    def test_dimacs(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, -2])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 2 1")
        assert "1 -2 0" in text


class TestEncoding:
    def test_circuit_encoding_semantics(self, full_adder_circuit):
        cnf, var = encode_circuit(full_adder_circuit)
        for assignment in all_assignments(full_adder_circuit):
            values = full_adder_circuit.evaluate(assignment)
            assumptions = [var[pi] if assignment[pi] else -var[pi]
                           for pi in full_adder_circuit.inputs]
            model = SatSolver(cnf).solve(assumptions)
            assert model is not None
            for node, expected in values.items():
                assert model[var[node]] == bool(expected), node

    def test_all_gate_types_encode(self):
        b = CircuitBuilder("zoo")
        a, c, d = b.inputs("a", "c", "d")
        g = b.xnor(b.nor(a, c), b.nand(c, d))
        g = b.xor(g, b.or_(a, d))
        g = b.and_(g, b.not_(c))
        b.outputs(b.buf(g, name="y"))
        circuit = b.build()
        cnf, var = encode_circuit(circuit)
        for assignment in all_assignments(circuit):
            expected = circuit.evaluate(assignment)["y"]
            assumptions = [var[pi] if assignment[pi] else -var[pi]
                           for pi in circuit.inputs]
            model = SatSolver(cnf).solve(assumptions)
            assert model is not None and model[var["y"]] == bool(expected)

    def test_wide_gates_encode(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("wide")
        for pi in "abcd":
            c.add_input(pi)
        c.add_gate("y", GateType.XOR, ["a", "b", "c", "d"])
        c.set_output("y")
        cnf, var = encode_circuit(c)
        for assignment in all_assignments(c):
            expected = c.evaluate(assignment)["y"]
            assumptions = [var[pi] if assignment[pi] else -var[pi]
                           for pi in c.inputs]
            model = SatSolver(cnf).solve(assumptions)
            assert model[var["y"]] == bool(expected)


class TestSolver:
    def test_trivially_sat(self):
        cnf = Cnf(num_vars=1)
        cnf.add_clause([1])
        assert solve_cnf(cnf) == {1: True}

    def test_trivially_unsat(self):
        cnf = Cnf(num_vars=1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf) is None

    def test_pigeonhole_unsat(self):
        # PHP(4, 3): 4 pigeons into 3 holes.
        pigeons, holes = 4, 3
        cnf = Cnf(num_vars=pigeons * holes)

        def var(i, j):
            return i * holes + j + 1

        for i in range(pigeons):
            cnf.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    cnf.add_clause([-var(i1, j), -var(i2, j)])
        assert solve_cnf(cnf) is None

    def test_reusable_with_assumptions(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, 2])
        solver = SatSolver(cnf)
        assert solver.solve([-1]) is not None
        assert solver.solve([-2]) is not None
        assert solver.solve([-1, -2]) is None
        assert solver.solve() is not None

    def _pigeonhole(self, pigeons, holes):
        cnf = Cnf(num_vars=pigeons * holes)

        def var(i, j):
            return i * holes + j + 1

        for i in range(pigeons):
            cnf.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    cnf.add_clause([-var(i1, j), -var(i2, j)])
        return cnf

    def test_conflict_budget_raises(self):
        # PHP(7, 6) needs far more than 10 conflicts to refute.
        solver = SatSolver(self._pigeonhole(7, 6))
        with pytest.raises(SolverBudgetExceeded) as exc:
            solver.solve(max_conflicts=10)
        assert exc.value.max_conflicts == 10
        assert exc.value.conflicts > 10
        assert "max_conflicts" in str(exc.value)

    def test_solver_reusable_after_budget_exhaustion(self):
        solver = SatSolver(self._pigeonhole(7, 6))
        with pytest.raises(SolverBudgetExceeded):
            solver.solve(max_conflicts=10)
        # Unbudgeted call on the same instance still refutes it.
        assert solver.solve() is None
        # And easy queries under a generous budget succeed.
        easy = Cnf(num_vars=2)
        easy.add_clause([1, 2])
        assert SatSolver(easy).solve(max_conflicts=100) is not None

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_brute_force(self, data):
        n = data.draw(st.integers(1, 6))
        m = data.draw(st.integers(1, 18))
        cnf = Cnf(num_vars=n)
        for _ in range(m):
            k = data.draw(st.integers(1, 3))
            clause = []
            for _ in range(k):
                v = data.draw(st.integers(1, n))
                clause.append(v if data.draw(st.booleans()) else -v)
            cnf.add_clause(clause)
        brute = any(
            cnf.evaluate([False] + list(bits))
            for bits in itertools.product([False, True], repeat=n))
        model = solve_cnf(cnf)
        if brute:
            assert model is not None
            assert cnf.evaluate([False] + [model[v]
                                           for v in range(1, n + 1)])
        else:
            assert model is None


class TestSatAtpg:
    def test_agrees_with_bdd_atpg_on_c17(self):
        circuit = c17()
        sat_engine = SatAtpg(circuit)
        bdd_engine = AtpgEngine(circuit)
        for fault in full_fault_list(circuit):
            sat_test = sat_engine.generate_test(fault)
            bdd_redundant = bdd_engine.is_redundant(fault)
            assert (sat_test is None) == bdd_redundant, str(fault)

    def test_generated_vectors_detect(self):
        circuit = fig2_circuit()
        engine = SatAtpg(circuit)
        from repro.sat.atpg import _detects
        for fault in full_fault_list(circuit):
            vector = engine.generate_test(fault)
            if vector is not None:
                assert _detects(circuit, vector, fault), str(fault)

    def test_redundancy_proved(self):
        b = CircuitBuilder("red")
        a = b.input("a")
        b.outputs(b.and_(a, b.not_(a), name="y"))
        circuit = b.build()
        engine = SatAtpg(circuit)
        assert engine.is_redundant(Fault("y", StuckAt.ZERO))
        assert not engine.is_redundant(Fault("y", StuckAt.ONE))

    def test_test_set_compaction(self):
        circuit = c17()
        tests, redundant = SatAtpg(circuit).generate_test_set()
        assert not redundant
        assert 0 < len(tests) < len(full_fault_list(circuit))


class TestSatEquivalence:
    def test_agrees_with_bdd_checker(self):
        for seed in range(3):
            c1 = random_circuit(5, 15, 2, seed=seed)
            c2_same = c1.copy("copy")
            assert sat_equivalent(c1, c2_same) is None
            assert are_equivalent(c1, c2_same)

    def test_counterexample_real(self):
        b1 = CircuitBuilder("x1")
        a, c = b1.inputs("a", "c")
        b1.outputs(b1.and_(a, c, name="y"))
        c1 = b1.build()
        b2 = CircuitBuilder("x2")
        a, c = b2.inputs("a", "c")
        b2.outputs(b2.or_(a, c, name="y"))
        c2 = b2.build()
        cex = sat_equivalent(c1, c2)
        assert cex is not None
        assert c1.evaluate_outputs(cex) != c2.evaluate_outputs(cex)

    def test_transform_equivalences_via_sat(self, full_adder_circuit):
        from repro.circuit import map_to_nand
        assert sat_equivalent(full_adder_circuit,
                              map_to_nand(full_adder_circuit)) is None
