"""Tests for the ROBDD engine."""

import itertools

import pytest

from repro.bdd import Bdd, BddManager, BddSizeLimitError


@pytest.fixture
def mgr():
    return BddManager()


@pytest.fixture
def abc(mgr):
    return mgr.new_var("a"), mgr.new_var("b"), mgr.new_var("c")


def brute_force_equal(f: Bdd, expected_fn, n_vars: int) -> bool:
    for bits in itertools.product((0, 1), repeat=n_vars):
        if f.evaluate(list(bits)) != expected_fn(*bits):
            return False
    return True


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.false.is_false and not mgr.false.is_true
        assert mgr.true.is_true

    def test_var_identity(self, mgr):
        a = mgr.new_var("a")
        assert mgr.var(0) == a
        assert mgr.var_name(0) == "a"

    def test_var_out_of_range(self, mgr):
        with pytest.raises(IndexError):
            mgr.var(0)

    def test_hash_consing(self, abc, mgr):
        a, b, _ = abc
        f1 = a & b
        f2 = a & b
        assert f1.node == f2.node
        assert f1 == f2 and hash(f1) == hash(f2)

    def test_cross_manager_rejected(self, abc):
        other = BddManager()
        x = other.new_var()
        with pytest.raises(ValueError):
            _ = abc[0] & x


class TestBooleanOps:
    def test_and(self, abc):
        a, b, _ = abc
        assert brute_force_equal(a & b, lambda x, y, z: x & y, 3)

    def test_or(self, abc):
        a, b, _ = abc
        assert brute_force_equal(a | b, lambda x, y, z: x | y, 3)

    def test_xor(self, abc):
        a, b, c = abc
        assert brute_force_equal(a ^ b ^ c, lambda x, y, z: x ^ y ^ z, 3)

    def test_not(self, abc):
        a, _, _ = abc
        assert brute_force_equal(~a, lambda x, y, z: 1 - x, 3)

    def test_double_negation(self, abc):
        a, b, _ = abc
        f = a & b
        assert (~~f) == f

    def test_ite(self, abc):
        a, b, c = abc
        f = a.ite(b, c)
        assert brute_force_equal(f, lambda x, y, z: y if x else z, 3)

    def test_demorgan(self, abc):
        a, b, _ = abc
        assert ~(a & b) == (~a | ~b)

    def test_complex_identity(self, abc):
        a, b, c = abc
        lhs = (a & b) | (a & c)
        rhs = a & (b | c)
        assert lhs == rhs

    def test_tautology_and_contradiction(self, abc):
        a, _, _ = abc
        assert (a | ~a).is_true
        assert (a & ~a).is_false


class TestStructuralOps:
    def test_restrict(self, abc):
        a, b, c = abc
        f = (a & b) | c
        assert f.restrict(0, 1) == (b | c)
        assert f.restrict(0, 0) == c

    def test_compose(self, abc):
        a, b, c = abc
        f = a & b
        composed = f.compose(0, b | c)  # a := b | c
        assert brute_force_equal(composed, lambda x, y, z: (y | z) & y, 3)

    def test_exists(self, abc):
        a, b, _ = abc
        f = a & b
        assert f.exists([0]) == b
        assert f.exists([0, 1]).is_true

    def test_forall(self, abc):
        a, b, _ = abc
        f = a | b
        assert f.forall([0]) == b

    def test_support(self, abc):
        a, b, c = abc
        assert (a & c).support() == frozenset({0, 2})
        assert ((a & b) ^ (a & b)).support() == frozenset()

    def test_size(self, abc):
        a, b, _ = abc
        assert (a & b).size() == 4  # two internal + two terminals
        assert a.size() == 3


class TestCounting:
    def test_sat_count_simple(self, abc):
        a, b, c = abc
        assert (a & b).sat_count() == 2  # c free
        assert (a | b).sat_count() == 6
        assert (a ^ b ^ c).sat_count() == 4

    def test_sat_count_n_vars_override(self, abc):
        a, b, _ = abc
        assert (a & b).sat_count(n_vars=2) == 1
        assert (a & b).sat_count(n_vars=5) == 8

    def test_sat_count_rejects_undersized(self, abc):
        _, _, c = abc
        with pytest.raises(ValueError):
            c.sat_count(n_vars=1)

    def test_probability_uniform(self, abc):
        a, b, c = abc
        assert (a & b).probability() == pytest.approx(0.25)
        assert (a | b | c).probability() == pytest.approx(7 / 8)

    def test_probability_weighted(self, abc):
        a, b, _ = abc
        p = (a & b).probability([0.9, 0.5, 0.5])
        assert p == pytest.approx(0.45)

    def test_probability_terminals(self, mgr):
        assert mgr.true.probability() == 1.0
        assert mgr.false.probability() == 0.0

    def test_pick_assignment(self, abc):
        a, b, c = abc
        f = (~a) & b & c
        assignment = f.pick_assignment()
        full = [assignment.get(i, 0) for i in range(3)]
        assert f.evaluate(full) == 1
        assert (a & ~a).pick_assignment() is None

    def test_evaluate(self, abc):
        a, b, c = abc
        f = (a | b) & ~c
        assert f.evaluate([1, 0, 0]) == 1
        assert f.evaluate([1, 0, 1]) == 0


class TestNodeLimit:
    def test_limit_enforced(self):
        mgr = BddManager(node_limit=16)
        vars_ = [mgr.new_var() for _ in range(8)]
        with pytest.raises(BddSizeLimitError):
            acc = vars_[0]
            for v in vars_[1:]:
                acc = acc ^ v  # XOR chains grow linearly but exceed 16

    def test_clear_caches_preserves_functions(self, abc):
        a, b, _ = abc
        f = a & b
        a.manager.clear_caches()
        g = a & b
        assert f == g
