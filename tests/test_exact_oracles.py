"""Tests for the exact engines (exhaustive, frontier, PTM) against each other.

Three independent implementations of the same quantity must agree to
floating-point precision; they anchor every approximate analysis in the
library.
"""

from fractions import Fraction

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, fig1_circuit, random_circuit
from repro.reliability import (
    PtmWidthError,
    exhaustive_exact_reliability,
    fixed_failure_error_probability,
    frontier_exact_reliability,
    ptm_reliability,
)


class TestOracleAgreement:
    @pytest.mark.parametrize("eps", [0.02, 0.1, 0.3])
    def test_three_engines_agree_on_c17(self, eps):
        circuit = c17()
        a = exhaustive_exact_reliability(circuit, eps)
        b = frontier_exact_reliability(circuit, eps)
        c = ptm_reliability(circuit, eps)
        for out in circuit.outputs:
            assert a.per_output[out] == pytest.approx(b.per_output[out],
                                                      abs=1e-12)
            assert a.per_output[out] == pytest.approx(c.per_output[out],
                                                      abs=1e-12)
        assert a.any_output == pytest.approx(b.any_output, abs=1e-12)
        assert a.any_output == pytest.approx(c.any_output, abs=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits(self, seed):
        circuit = random_circuit(4, 8, 2, seed=seed)
        eps = 0.07
        a = exhaustive_exact_reliability(circuit, eps)
        b = frontier_exact_reliability(circuit, eps)
        c = ptm_reliability(circuit, eps)
        for out in circuit.outputs:
            assert a.per_output[out] == pytest.approx(b.per_output[out],
                                                      abs=1e-12)
            assert a.per_output[out] == pytest.approx(c.per_output[out],
                                                      abs=1e-12)

    def test_per_gate_eps(self, reconvergent_circuit):
        eps = {g: 0.03 * (i + 1) for i, g in
               enumerate(reconvergent_circuit.topological_gates())}
        a = exhaustive_exact_reliability(reconvergent_circuit, eps)
        b = frontier_exact_reliability(reconvergent_circuit, eps)
        c = ptm_reliability(reconvergent_circuit, eps)
        assert a.delta() == pytest.approx(b.delta(), abs=1e-12)
        assert a.delta() == pytest.approx(c.delta(), abs=1e-12)

    def test_any_output_bounds(self, full_adder_circuit):
        r = exhaustive_exact_reliability(full_adder_circuit, 0.1)
        assert r.any_output >= max(r.per_output.values()) - 1e-12
        assert r.any_output <= sum(r.per_output.values()) + 1e-12


class TestGuards:
    def test_exhaustive_gate_limit(self):
        circuit = random_circuit(4, 25, 2, seed=0)
        with pytest.raises(ValueError, match="max_gates"):
            exhaustive_exact_reliability(circuit, 0.1, max_gates=20)

    def test_exhaustive_input_limit(self):
        circuit = random_circuit(20, 4, 2, seed=0)
        with pytest.raises(ValueError, match="max_inputs"):
            exhaustive_exact_reliability(circuit, 0.1, max_inputs=16)

    def test_frontier_input_limit(self):
        circuit = random_circuit(14, 4, 2, seed=0)
        with pytest.raises(ValueError):
            frontier_exact_reliability(circuit, 0.1, max_inputs=12)

    def test_ptm_width_guard(self):
        circuit = random_circuit(14, 30, 6, seed=1)
        with pytest.raises(PtmWidthError):
            ptm_reliability(circuit, 0.1, max_inputs=12)

    def test_frontier_handles_deep_narrow_circuits(self):
        # 30 gates is far beyond the subset enumerator; the frontier engine
        # handles it because the live set stays tiny.
        b = CircuitBuilder("chain")
        a, c = b.inputs("a", "c")
        acc = b.and_(a, c)
        for _ in range(29):
            acc = b.not_(acc)
        b.outputs(acc)
        circuit = b.build()
        r = frontier_exact_reliability(circuit, 0.1)
        assert 0.0 < r.delta() <= 0.5 + 1e-12


class TestFixedFailure:
    def test_returns_exact_fraction(self):
        circuit = fig1_circuit()
        frac = fixed_failure_error_probability(circuit, ["Gx", "Gz"])
        assert isinstance(frac, Fraction)
        assert 0 <= frac <= 1
        assert frac.denominator in (1, 2, 4, 8, 16)

    def test_flip_of_output_gate_always_propagates(self):
        circuit = fig1_circuit()
        frac = fixed_failure_error_probability(circuit, ["y"])
        assert frac == 1

    def test_two_flips_on_same_path_can_cancel(self):
        b = CircuitBuilder("cancel")
        a = b.input("a")
        g1 = b.buf(a, name="g1")
        b.outputs(b.buf(g1, name="g2"))
        circuit = b.build()
        assert fixed_failure_error_probability(circuit, ["g1", "g2"]) == 0

    def test_matches_exhaustive_limit(self, reconvergent_circuit):
        # Pinning both gates to always-fail equals exhaustive with eps=1
        # restricted... verified via direct construction: flipping g4 only.
        frac = fixed_failure_error_probability(reconvergent_circuit, ["g4"])
        from repro.reliability import bdd_observabilities
        obs = bdd_observabilities(reconvergent_circuit)
        assert float(frac) == pytest.approx(obs["g4"])

    def test_non_gate_rejected(self, reconvergent_circuit):
        with pytest.raises(ValueError):
            fixed_failure_error_probability(reconvergent_circuit, ["i0"])


class TestFig1Discussion:
    """Sec. 3.1: the closed form misestimates joint Gx/Gz failures."""

    def test_joint_failure_differs_from_independence_estimate(self):
        circuit = fig1_circuit()
        from repro.reliability import bdd_observabilities
        obs = bdd_observabilities(circuit)
        joint = float(fixed_failure_error_probability(circuit, ["Gx", "Gz"]))
        # Closed-form reasoning: error iff exactly one observable — with
        # independence this is ox(1-oz) + oz(1-ox).
        independent = (obs["Gx"] * (1 - obs["Gz"])
                       + obs["Gz"] * (1 - obs["Gx"]))
        assert joint != pytest.approx(independent, abs=1e-3)

    def test_gx_observable_only_if_gy(self):
        circuit = fig1_circuit()
        # Flipping Gx changes y only on vectors where flipping Gy would too?
        # Structurally: Gx's only path to y runs through Gy.
        assert circuit.fanouts("Gx") == ("Gy",)
