"""Functional tests for the circuit generators."""

import numpy as np
import pytest

from repro.circuit import circuit_stats, is_tree
from repro.circuits import (
    array_multiplier,
    c17,
    equality_comparator,
    fig1_circuit,
    fig2_circuit,
    majority_voter,
    mux_tree,
    one_hot_decoder,
    parity_tree,
    random_circuit,
    ripple_carry_adder,
    sec_circuit,
)
from repro.circuits.generators import fanin_network


class TestArithmetic:
    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_ripple_carry_adder(self, width):
        circuit = ripple_carry_adder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                for cin in (0, 1):
                    assignment = {"cin": cin}
                    for i in range(width):
                        assignment[f"a{i}"] = (a >> i) & 1
                        assignment[f"b{i}"] = (b >> i) & 1
                    out = circuit.evaluate_outputs(assignment)
                    total = a + b + cin
                    got = sum(out[f"sum{i}"] << i for i in range(width))
                    got += out["cout"] << width
                    assert got == total, (a, b, cin)

    @pytest.mark.parametrize("width", [2, 3])
    def test_array_multiplier(self, width):
        circuit = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assignment = {}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                out = circuit.evaluate_outputs(assignment)
                got = sum(v << int(k[1:]) for k, v in out.items())
                assert got == a * b, (a, b, got)

    def test_multiplier_width_validation(self):
        with pytest.raises(ValueError):
            array_multiplier(1)


class TestCombinational:
    @pytest.mark.parametrize("width", [2, 5, 8])
    def test_parity_tree(self, width):
        circuit = parity_tree(width)
        assert is_tree(circuit)
        for k in range(1 << width):
            assignment = {f"x{i}": (k >> i) & 1 for i in range(width)}
            expected = bin(k).count("1") % 2
            assert circuit.evaluate_outputs(assignment)["parity"] == expected

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_mux_tree(self, bits):
        circuit = mux_tree(bits)
        n_data = 1 << bits
        for sel in range(n_data):
            for data in (0, (1 << n_data) - 1, 0b1010101 & ((1 << n_data) - 1)):
                assignment = {f"s{i}": (sel >> i) & 1 for i in range(bits)}
                assignment.update(
                    {f"d{i}": (data >> i) & 1 for i in range(n_data)})
                out = circuit.evaluate_outputs(assignment)["y"]
                assert out == (data >> sel) & 1

    @pytest.mark.parametrize("width", [1, 3])
    def test_equality_comparator(self, width):
        circuit = equality_comparator(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assignment = {}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                assert (circuit.evaluate_outputs(assignment)["eq"]
                        == int(a == b))

    @pytest.mark.parametrize("bits", [2, 3])
    def test_one_hot_decoder(self, bits):
        circuit = one_hot_decoder(bits)
        for sel in range(1 << bits):
            assignment = {f"s{i}": (sel >> i) & 1 for i in range(bits)}
            out = circuit.evaluate_outputs(assignment)
            for code in range(1 << bits):
                assert out[f"y{code}"] == int(code == sel)

    @pytest.mark.parametrize("n", [3, 5])
    def test_majority_voter(self, n):
        circuit = majority_voter(n)
        for k in range(1 << n):
            assignment = {f"x{i}": (k >> i) & 1 for i in range(n)}
            expected = int(bin(k).count("1") > n // 2)
            assert circuit.evaluate_outputs(assignment)["maj"] == expected

    def test_majority_needs_odd(self):
        with pytest.raises(ValueError):
            majority_voter(4)


class TestC17AndFigures:
    def test_c17_is_the_published_netlist(self):
        circuit = c17()
        assert circuit.num_gates == 6
        assert all(circuit.node(g).gate_type.value == "nand"
                   for g in circuit.gates)
        # Spot-check known responses (hand-evaluated NAND network).
        out = circuit.evaluate_outputs({p: 0 for p in circuit.inputs})
        assert out["22"] == 0 and out["23"] == 0
        out = circuit.evaluate_outputs({p: 1 for p in circuit.inputs})
        assert out["22"] == 1 and out["23"] == 0

    def test_fig1_structure(self):
        circuit = fig1_circuit()
        # Gx in transitive fanin of Gy; reconvergence present.
        assert "Gx" in circuit.transitive_fanin(["Gy"])
        from repro.circuit import reconvergent_gates
        assert reconvergent_gates(circuit)

    def test_fig2_structure(self):
        circuit = fig2_circuit()
        assert circuit.num_gates == 6
        # Gate 2 fans out to gates 4 and 5 which reconverge at gate 6.
        assert set(circuit.fanouts("n2")) == {"n4", "n5"}
        assert set(circuit.fanins("n6")) == {"n4", "n5"}


class TestRandomCircuit:
    def test_deterministic(self):
        a = random_circuit(8, 40, 5, seed=7)
        b = random_circuit(8, 40, 5, seed=7)
        assert [n.name for n in a] == [n.name for n in b]
        assert [(n.gate_type, n.fanins) for n in a] == \
            [(n.gate_type, n.fanins) for n in b]

    def test_different_seeds_differ(self):
        a = random_circuit(8, 40, 5, seed=7)
        b = random_circuit(8, 40, 5, seed=8)
        assert [(n.gate_type, n.fanins) for n in a] != \
            [(n.gate_type, n.fanins) for n in b]

    def test_gate_count_exact(self):
        circuit = random_circuit(10, 77, 9, seed=3)
        assert circuit.num_gates == 77

    def test_no_dead_logic(self):
        circuit = random_circuit(10, 60, 6, seed=1)
        outputs = set(circuit.outputs)
        for gate in circuit.gates:
            assert circuit.fanouts(gate) or gate in outputs

    def test_max_fanout_respected(self):
        circuit = random_circuit(10, 80, 8, seed=2, max_fanout=3)
        for name in circuit.topological_order():
            assert circuit.fanout_count(name) <= 3

    def test_xor_weight_zero_removes_parity_gates(self):
        circuit = random_circuit(8, 50, 5, seed=4, xor_weight=0.0)
        kinds = {circuit.node(g).gate_type.value for g in circuit.gates}
        assert "xor" not in kinds and "xnor" not in kinds

    def test_validation(self):
        with pytest.raises(ValueError):
            random_circuit(1, 10, 2, seed=0)


class TestSecCircuit:
    def test_corrects_single_check_equals_clean_when_disabled(self):
        circuit = sec_circuit(data_bits=8, check_bits=5, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(20):
            data = int(rng.integers(1 << 8))
            assignment = {f"d{i}": (data >> i) & 1 for i in range(8)}
            # Compute consistent check bits by asking the circuit itself:
            # with en=0 the outputs are just the data.
            assignment.update({f"c{j}": int(rng.integers(2))
                               for j in range(5)})
            assignment["en"] = 0
            out = circuit.evaluate_outputs(assignment)
            got = sum(out[f"q{i}"] << i for i in range(8))
            assert got == data

    def test_corrects_single_data_error(self):
        # All-zero data recomputes all-zero checks, so the all-zero check
        # word is consistent (syndrome 0).  A single flipped data bit then
        # produces exactly that bit's syndrome pattern, and the decoder must
        # restore the zero word.
        circuit = sec_circuit(data_bits=8, check_bits=5, seed=1)
        base = {f"d{i}": 0 for i in range(8)}
        base.update({f"c{j}": 0 for j in range(5)})
        base["en"] = 1
        out = circuit.evaluate_outputs(base)
        assert sum(out[f"q{i}"] << i for i in range(8)) == 0
        for flip in range(8):
            corrupted = dict(base)
            corrupted[f"d{flip}"] = 1
            out = circuit.evaluate_outputs(corrupted)
            got = sum(out[f"q{i}"] << i for i in range(8))
            assert got == 0, flip

    def test_single_check_error_is_harmless(self):
        # A corrupted check bit yields a weight-1 syndrome; every data
        # pattern has weight >= 2, so no decoder fires.
        circuit = sec_circuit(data_bits=8, check_bits=5, seed=1)
        base = {f"d{i}": 0 for i in range(8)}
        base.update({f"c{j}": 0 for j in range(5)})
        base["en"] = 1
        for flip in range(5):
            corrupted = dict(base)
            corrupted[f"c{flip}"] = 1
            out = circuit.evaluate_outputs(corrupted)
            assert sum(out[f"q{i}"] << i for i in range(8)) == 0, flip

    def test_check_bits_capacity_validated(self):
        with pytest.raises(ValueError):
            sec_circuit(data_bits=300, check_bits=4)


class TestFaninNetwork:
    def test_balanced_and_chain_same_function(self):
        bal = fanin_network(10, 12, 4, 6, seed=5, balanced=True)
        chain = fanin_network(10, 12, 4, 6, seed=5, balanced=False)
        assert bal.num_gates == chain.num_gates
        rng = np.random.default_rng(2)
        for _ in range(40):
            assignment = {f"pi{i}": int(rng.integers(2)) for i in range(10)}
            assert (bal.evaluate_outputs(assignment)
                    == chain.evaluate_outputs(assignment))

    def test_balanced_is_shallower(self):
        bal = fanin_network(10, 12, 4, 8, seed=5, balanced=True)
        chain = fanin_network(10, 12, 4, 8, seed=5, balanced=False)
        assert bal.depth < chain.depth
