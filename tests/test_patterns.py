"""Tests for packed-pattern utilities."""

import numpy as np
import pytest

from repro.sim import patterns


class TestSizing:
    def test_words_for_patterns(self):
        assert patterns.words_for_patterns(1) == 1
        assert patterns.words_for_patterns(64) == 1
        assert patterns.words_for_patterns(65) == 2
        assert patterns.words_for_patterns(1 << 16) == 1 << 10

    def test_words_for_patterns_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            patterns.words_for_patterns(0)

    def test_tail_mask(self):
        assert patterns.tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert patterns.tail_mask(1) == np.uint64(1)
        assert patterns.tail_mask(65) == np.uint64(1)
        assert patterns.tail_mask(70) == np.uint64(0x3F)


class TestBasicPacks:
    def test_zeros_and_ones(self):
        assert patterns.popcount(patterns.zeros(10)) == 0
        assert patterns.popcount(patterns.ones(10)) == 640

    def test_random_words_are_fair(self):
        rng = np.random.default_rng(0)
        words = patterns.random_words(4096, rng)
        density = patterns.popcount(words) / (4096 * 64)
        assert abs(density - 0.5) < 0.01


class TestBernoulli:
    @pytest.mark.parametrize("p", [0.05, 0.1, 0.25, 0.3333, 0.5, 0.9])
    def test_density_matches_p(self, p):
        rng = np.random.default_rng(42)
        words = patterns.bernoulli_words(p, 8192, rng)
        density = patterns.popcount(words) / (8192 * 64)
        assert density == pytest.approx(p, abs=0.005)

    def test_degenerate_probabilities(self):
        rng = np.random.default_rng(0)
        assert patterns.popcount(patterns.bernoulli_words(0.0, 16, rng)) == 0
        assert patterns.popcount(
            patterns.bernoulli_words(1.0, 16, rng)) == 16 * 64

    def test_below_precision_rounds_to_zero(self):
        rng = np.random.default_rng(0)
        words = patterns.bernoulli_words(1e-12, 64, rng, precision=24)
        assert patterns.popcount(words) == 0

    def test_out_of_range_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            patterns.bernoulli_words(1.5, 4, rng)

    def test_independent_draws_differ(self):
        rng = np.random.default_rng(1)
        w1 = patterns.bernoulli_words(0.3, 64, rng)
        w2 = patterns.bernoulli_words(0.3, 64, rng)
        assert not np.array_equal(w1, w2)


class TestExhaustive:
    def test_enumerates_all_vectors(self):
        n = 8
        packs = [patterns.exhaustive_words(i, n) for i in range(n)]
        seen = set()
        for k in range(1 << n):
            word, bit = divmod(k, 64)
            vector = tuple(int(packs[i][word] >> np.uint64(bit)) & 1
                           for i in range(n))
            seen.add(vector)
        assert len(seen) == 1 << n

    def test_small_spaces_cycle(self):
        pack = patterns.exhaustive_words(0, 3)
        bits = patterns.unpack_bits(pack, 64)
        assert list(bits[:8]) == list(bits[8:16])

    def test_var_index_validated(self):
        with pytest.raises(ValueError):
            patterns.exhaustive_words(5, 3)

    def test_exhaustive_pack_keys(self):
        pack = patterns.exhaustive_pack(["x", "y"])
        assert set(pack) == {"x", "y"}


class TestCounting:
    def test_popcount(self):
        words = np.array([0b1011, 0], dtype=np.uint64)
        assert patterns.popcount(words) == 3

    def test_masked_popcount_ignores_tail(self):
        words = patterns.ones(2)
        assert patterns.masked_popcount(words, 70) == 70

    def test_masked_popcount_bounds(self):
        words = patterns.ones(1)
        with pytest.raises(ValueError):
            patterns.masked_popcount(words, 65)

    def test_pack_unpack_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1] * 23
        packed = patterns.pack_bits(bits)
        assert list(patterns.unpack_bits(packed, len(bits))) == bits

    def test_pack_bits_pads_with_zeros(self):
        packed = patterns.pack_bits([1, 1, 1])
        assert patterns.popcount(packed) == 3
