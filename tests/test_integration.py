"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro import (
    ConsolidatedAnalyzer,
    analyze,
    ObservabilityModel,
    SinglePassAnalyzer,
    get_benchmark,
    load_bench,
    monte_carlo_reliability,
    save_bench,
)
from repro.circuit import expand_xor, strip_buffers
from repro.io import load_blif, save_blif
from repro.reliability import exhaustive_exact_reliability


class TestFileToAnalysisFlow:
    def test_bench_round_trip_preserves_reliability(self, tmp_path):
        circuit = get_benchmark("c17")
        path = tmp_path / "c17.bench"
        save_bench(circuit, path)
        reloaded = load_bench(path)
        a = analyze(circuit, 0.1)
        b = analyze(reloaded, 0.1)
        for out in circuit.outputs:
            assert a.per_output[out] == pytest.approx(b.per_output[out])

    def test_blif_round_trip_preserves_reliability(self, tmp_path):
        circuit = get_benchmark("fig2")
        path = tmp_path / "fig2.blif"
        save_blif(circuit, path)
        reloaded = load_blif(path)
        a = exhaustive_exact_reliability(circuit, 0.1)
        b = exhaustive_exact_reliability(reloaded, 0.1)
        assert a.delta() == pytest.approx(b.delta())


class TestMethodCrossValidation:
    """All four analyses agree (within their error models) on one circuit."""

    def test_fig2_all_methods(self):
        circuit = get_benchmark("fig2")
        eps = 0.08
        exact = exhaustive_exact_reliability(circuit, eps).delta()
        sp = analyze(circuit, eps).delta()
        mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 17,
                                     seed=0).delta()
        closed = ObservabilityModel(circuit).delta(eps)
        assert sp == pytest.approx(exact, abs=0.02)
        assert mc == pytest.approx(exact, abs=0.01)
        assert closed == pytest.approx(exact, abs=0.03)

    def test_small_benchmark_against_mc(self):
        circuit = get_benchmark("x2")
        analyzer = SinglePassAnalyzer(circuit)
        for eps in (0.1, 0.3):
            sp = analyzer.run(eps)
            mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                         seed=1)
            errs = [abs(sp.per_output[o] - mc.per_output[o])
                    for o in circuit.outputs]
            assert np.mean(errs) < 0.02

    def test_error_shrinks_with_eps_like_table2(self):
        """Table 2's signature: single-pass % error decreases as eps grows."""
        circuit = get_benchmark("cu")
        analyzer = SinglePassAnalyzer(circuit)

        def avg_pct_error(eps, seed):
            sp = analyzer.run(eps)
            mc = monte_carlo_reliability(circuit, eps,
                                         n_patterns=1 << 17, seed=seed)
            return np.mean([
                abs(sp.per_output[o] - mc.per_output[o])
                / max(mc.per_output[o], 1e-9) * 100
                for o in circuit.outputs])

        assert avg_pct_error(0.05, 3) > avg_pct_error(0.3, 4)


class TestXorExpansionStudy:
    """The c499/c1355 relationship end-to-end on a small circuit."""

    def test_expansion_preserves_function_but_lowers_reliability(self):
        eps = 0.03
        from repro.circuits import parity_tree
        p = parity_tree(4)
        p_nand = strip_buffers(expand_xor(p))
        base = exhaustive_exact_reliability(p, eps).delta()
        more = exhaustive_exact_reliability(p_nand, eps).delta()
        assert more > base  # more noisy gates, same function
        # The 4-NAND XOR blocks are internally reconvergent — the hard case
        # for pairwise correlation (the paper's c1355 shows the same) — so
        # the accuracy bound here is loose.
        sp = analyze(p_nand, eps).delta()
        assert sp == pytest.approx(more, abs=0.04)


class TestConsolidatedFlow:
    def test_b9_consolidated_against_mc(self):
        circuit = get_benchmark("b9")
        analyzer = ConsolidatedAnalyzer(
            circuit, n_patterns=1 << 14,
            max_correlation_level_gap=8)
        eps = 0.02
        result = analyzer.run(eps)
        mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 15,
                                     seed=5)
        assert result.any_output == pytest.approx(mc.any_output, abs=0.08)
        assert result.any_output <= result.any_output_independent + 1e-9

    def test_weights_shared_across_eps_sweep(self):
        circuit = get_benchmark("cu")
        analyzer = SinglePassAnalyzer(circuit)
        curve = analyzer.curve([0.0, 0.1, 0.2, 0.3],
                               output=circuit.outputs[0])
        assert curve[0.0] == 0.0
        values = [curve[e] for e in (0.1, 0.2, 0.3)]
        assert all(0 < v <= 0.55 for v in values)
