"""Tests for the Sec. 4.1 error-event correlation engine."""

import pytest

from repro.circuit import CircuitBuilder
from repro.probability import (
    EVENT_0TO1,
    EVENT_1TO0,
    ErrorCorrelationEngine,
    IndependentCorrelations,
)
from repro.reliability import SinglePassAnalyzer, exhaustive_exact_reliability


def run_with_engine(circuit, eps):
    analyzer = SinglePassAnalyzer(circuit, use_correlation=True)
    result = analyzer.run(eps)
    return result, result.correlation_engine


class TestBaseCases:
    def test_same_wire_same_event(self, reconvergent_circuit):
        result, engine = run_with_engine(reconvergent_circuit, 0.1)
        p = result.node_errors["g2"].of_event(EVENT_0TO1)
        assert engine("g2", EVENT_0TO1, "g2", EVENT_0TO1) == pytest.approx(
            1.0 / p)

    def test_same_wire_cross_event_is_zero(self, reconvergent_circuit):
        _, engine = run_with_engine(reconvergent_circuit, 0.1)
        assert engine("g2", EVENT_0TO1, "g2", EVENT_1TO0) == 0.0

    def test_disjoint_supports_independent(self, tree_circuit):
        analyzer = SinglePassAnalyzer(tree_circuit, use_correlation=True)
        result = analyzer.run(0.1)
        engine = result.correlation_engine
        # a1 and n1 live in disjoint halves of the tree.
        gates = tree_circuit.topological_gates()
        assert engine(gates[0], EVENT_0TO1, gates[2], EVENT_0TO1) == 1.0

    def test_symmetry_in_argument_order(self, reconvergent_circuit):
        _, engine = run_with_engine(reconvergent_circuit, 0.1)
        c1 = engine("g4", EVENT_0TO1, "g5", EVENT_1TO0)
        c2 = engine("g5", EVENT_1TO0, "g4", EVENT_0TO1)
        assert c1 == pytest.approx(c2)

    def test_coefficients_nonnegative_and_feasible(self, reconvergent_circuit):
        result, engine = run_with_engine(reconvergent_circuit, 0.15)
        for a in ("g4", "g5"):
            for ea in (EVENT_0TO1, EVENT_1TO0):
                for eb in (EVENT_0TO1, EVENT_1TO0):
                    c = engine(a, ea, "g2", eb)
                    assert c >= 0.0
                    pa = result.node_errors[a].of_event(ea)
                    pb = result.node_errors["g2"].of_event(eb)
                    if pa > 0 and pb > 0:
                        assert c <= 1.0 / max(pa, pb) + 1e-9


class TestEngineEffects:
    def test_correlation_improves_accuracy(self, reconvergent_circuit):
        eps = 0.08
        exact = exhaustive_exact_reliability(reconvergent_circuit, eps).delta()
        with_corr = SinglePassAnalyzer(
            reconvergent_circuit, use_correlation=True).run(eps).delta()
        without = SinglePassAnalyzer(
            reconvergent_circuit, use_correlation=False).run(eps).delta()
        assert abs(with_corr - exact) < abs(without - exact)

    def test_pairs_counted(self, reconvergent_circuit):
        result, engine = run_with_engine(reconvergent_circuit, 0.1)
        assert result.correlation_pairs == engine.pairs_computed
        assert result.correlation_pairs > 0

    def test_budget_degrades_gracefully(self, reconvergent_circuit):
        analyzer = SinglePassAnalyzer(reconvergent_circuit,
                                      use_correlation=True,
                                      max_correlation_pairs=1)
        result = analyzer.run(0.1)
        assert result.correlation_engine.budget_exceeded
        assert 0.0 <= result.delta() <= 0.5 + 1e-9

    def test_level_gap_truncation(self):
        b = CircuitBuilder("deepchain")
        a, c = b.inputs("a", "c")
        stem = b.and_(a, c, name="stem")
        left = stem
        for _ in range(8):
            left = b.not_(left)
        top = b.or_(left, stem, name="top")
        b.outputs(top)
        circuit = b.build()
        full = SinglePassAnalyzer(circuit, use_correlation=True).run(0.1)
        gapped = SinglePassAnalyzer(circuit, use_correlation=True,
                                    max_correlation_level_gap=2).run(0.1)
        # The reconvergence spans 9 levels, so the gap cap must prune pairs.
        assert gapped.correlation_pairs < full.correlation_pairs

    def test_independent_correlations_stub(self):
        stub = IndependentCorrelations()
        assert stub("x", EVENT_0TO1, "y", EVENT_1TO0) == 1.0
        assert stub.pairs_computed == 0


class TestPairOrderingContract:
    """The deterministic pair-ordering contract (ISSUE 3 bugfix).

    Coefficient keys are canonical — topologically later wire first — so a
    pair has exactly one memo entry no matter which argument order queried
    it, and :meth:`coefficient_items` iterates sorted by wire ids.  The
    compiled correlated kernel shares this contract (via
    :class:`PairStructure`), which is what lets a compiled run seed a
    scalar engine without order-dependent divergence.
    """

    def test_both_query_orders_share_one_memo_entry(self,
                                                    reconvergent_circuit):
        _, engine = run_with_engine(reconvergent_circuit, 0.1)
        fresh = ErrorCorrelationEngine(
            engine.circuit, engine.weights, engine.errors,
            eps_of=engine.eps_of)
        before = fresh.pairs_computed
        c1 = fresh("g4", EVENT_0TO1, "g5", EVENT_1TO0)
        after_first = fresh.pairs_computed
        c2 = fresh("g5", EVENT_1TO0, "g4", EVENT_0TO1)
        assert c1 == c2  # bit-identical, not approx: one entry, two reads
        assert fresh.pairs_computed == after_first
        assert fresh.cache_hits >= 1
        # The single new top-level key is stored in canonical form: the
        # topologically later wire ('g5' follows 'g4') first.
        new_keys = dict(fresh.coefficient_items())
        assert ("g5", EVENT_1TO0, "g4", EVENT_0TO1) in new_keys
        assert ("g4", EVENT_0TO1, "g5", EVENT_1TO0) not in new_keys
        assert fresh.pairs_computed > before

    def test_query_order_does_not_change_values(self, reconvergent_circuit):
        """Two engines fed the same pairs in reversed orders agree exactly."""
        _, seeded = run_with_engine(reconvergent_circuit, 0.1)
        queries = [(a, ea, b, eb)
                   for (a, ea, b, eb), _ in seeded.coefficient_items()]

        def replay(order):
            engine = ErrorCorrelationEngine(
                seeded.circuit, seeded.weights, seeded.errors,
                eps_of=seeded.eps_of)
            return [(q, engine(*q)) for q in order]

        forward = dict(replay(queries))
        backward = dict(replay([(b, eb, a, ea)
                                for a, ea, b, eb in reversed(queries)]))
        for (a, ea, b, eb), value in forward.items():
            assert backward[(b, eb, a, ea)] == value

    def test_coefficient_items_sorted(self, reconvergent_circuit):
        _, engine = run_with_engine(reconvergent_circuit, 0.1)
        keys = [key for key, _ in engine.coefficient_items()]
        assert len(keys) > 1
        assert keys == sorted(keys)

    def test_seed_reproduces_memo_state(self, reconvergent_circuit):
        _, engine = run_with_engine(reconvergent_circuit, 0.1)
        clone = ErrorCorrelationEngine(
            engine.circuit, engine.weights, engine.errors,
            eps_of=engine.eps_of)
        clone.seed(dict(engine.coefficient_items()))
        assert list(clone.coefficient_items()) == \
            list(engine.coefficient_items())
        hits_before = clone.cache_hits
        for (a, ea, b, eb), value in engine.coefficient_items():
            assert clone(a, ea, b, eb) == value
        assert clone.cache_hits == hits_before + clone.pairs_computed


class TestTmrStructures:
    def test_no_probability_explosion_on_voters(self, full_adder_circuit):
        from repro.circuit import triplicate_gates
        hardened = triplicate_gates(full_adder_circuit,
                                    full_adder_circuit.gates[:2])
        result = SinglePassAnalyzer(hardened, use_correlation=True).run(0.05)
        for out, delta in result.per_output.items():
            assert 0.0 <= delta <= 0.5 + 1e-9, (out, delta)
