"""Multi-circuit parity suite for the tensor kernel.

The contract under test: a :class:`~repro.reliability.tensor_pass.
TensorBatch` sweep returns, per circuit, the same numbers a solo
:meth:`CompiledSinglePass.run_sweep` produces — bit-identical when the
per-circuit eps batches have equal length (no padding), and within
1e-10 when ragged padding changes array extents (einsum reduction
order may differ at the ULP level with a different trailing-axis
extent).  On top of the kernel, the engine's cross-session batching
must hand back response payloads matching solo ``submit`` calls.
"""

import json

import numpy as np
import pytest

from repro.circuits.catalog import get_benchmark, list_benchmarks
from repro.engine import AnalysisEngine
from repro.probability.weights import compute_weights
from repro.reliability.compiled_pass import CompiledSinglePass
from repro.reliability.single_pass import SinglePassAnalyzer
from repro.reliability.tensor_pass import TensorBatch

EPS = [0.001, 0.02, 0.1]


def _plan(circuit, **kwargs):
    """A compiled plan with cheap (sampled) weights — parity doesn't
    care how accurate the weight vectors are, only that both arms use
    the same ones."""
    weights = compute_weights(circuit, method="sampled",
                              n_patterns=1 << 8, seed=0)
    return CompiledSinglePass(circuit, weights, **kwargs)


# -- full-catalog parity (acceptance criterion) -------------------------
def test_full_catalog_parity():
    """Tensor batch over all 18 catalog circuits matches solo kernels."""
    names = list_benchmarks()
    assert len(names) == 18
    plans = [_plan(get_benchmark(name)) for name in names]
    batch = TensorBatch(plans)
    assert batch.n_circuits == 18
    assert batch.num_groups < batch.unmerged_groups
    sweeps = batch.run_sweep([EPS] * len(plans))
    for plan, sweep in zip(plans, sweeps):
        solo = plan.run_sweep(EPS)
        assert sweep.circuit_name == solo.circuit_name
        assert sweep.p01.shape == solo.p01.shape
        # Equal-length batches: padding never fires, results are
        # bit-identical (and trivially within the 1e-10 bound).
        assert np.array_equal(sweep.p01, solo.p01), plan.circuit.name
        assert np.array_equal(sweep.p10, solo.p10), plan.circuit.name
        assert np.array_equal(sweep.per_output, solo.per_output)
        np.testing.assert_allclose(sweep.per_output, solo.per_output,
                                   atol=1e-10)


def test_ragged_batches():
    """Mixed-length eps batches pad to the longest and slice back."""
    plans = [_plan(get_benchmark(n)) for n in ("c17", "c432", "b9")]
    specs = [[0.01], [0.005, 0.05, 0.2, 0.4], [0.1, 0.3]]
    sweeps = TensorBatch(plans).run_sweep(specs)
    for plan, sp, sweep in zip(plans, specs, sweeps):
        solo = plan.run_sweep(sp)
        assert sweep.p01.shape == solo.p01.shape
        np.testing.assert_allclose(sweep.p01, solo.p01, atol=1e-10)
        np.testing.assert_allclose(sweep.p10, solo.p10, atol=1e-10)
        np.testing.assert_allclose(sweep.per_output, solo.per_output,
                                   atol=1e-10)


def test_batch_of_one():
    plan = _plan(get_benchmark("c880"))
    sweeps = TensorBatch([plan]).run_sweep([EPS])
    solo = plan.run_sweep(EPS)
    assert len(sweeps) == 1
    assert np.array_equal(sweeps[0].p01, solo.p01)
    assert np.array_equal(sweeps[0].per_output, solo.per_output)


def test_duplicate_circuit_in_batch():
    """The same plan may appear twice (two result slots, same numbers)."""
    plan = _plan(get_benchmark("c17"))
    sweeps = TensorBatch([plan, plan]).run_sweep([EPS, EPS])
    assert np.array_equal(sweeps[0].p01, sweeps[1].p01)


def test_per_gate_eps_maps():
    circuit = get_benchmark("c17")
    plan = _plan(circuit)
    other = _plan(get_benchmark("b9"))
    gate = plan.gate_names[0]
    specs = [{"default": 0.05, gate: 0.2}, {"default": 0.01}]
    sweeps = TensorBatch([plan, other]).run_sweep([specs, [0.05, 0.01]])
    solo = plan.run_sweep(specs)
    assert np.array_equal(sweeps[0].p01, solo.p01)


def test_eps10_batches():
    """Asymmetric channels batch too (parallel eps10 spec lists)."""
    plans = [_plan(get_benchmark(n)) for n in ("c17", "cu")]
    eps = [[0.01, 0.05], [0.02, 0.1]]
    eps10 = [[0.005, 0.02], None]
    sweeps = TensorBatch(plans).run_sweep(eps, eps10)
    for plan, e, e10, sweep in zip(plans, eps, eps10, sweeps):
        solo = plan.run_sweep(e, e10)
        np.testing.assert_allclose(sweep.p01, solo.p01, atol=1e-10)
        np.testing.assert_allclose(sweep.p10, solo.p10, atol=1e-10)


def test_sweep_point_results_match_solo():
    """Sliced SinglePassResult views agree with the solo kernel's."""
    plans = [_plan(get_benchmark(n)) for n in ("c17", "fig1a")]
    sweeps = TensorBatch(plans).run_sweep([EPS, EPS])
    for plan, sweep in zip(plans, sweeps):
        solo = plan.run_sweep(EPS)
        for j in range(len(EPS)):
            a, b = sweep.point(j), solo.point(j)
            assert a.per_output == b.per_output


# -- construction contracts ---------------------------------------------
def test_rejects_empty_batch():
    with pytest.raises(ValueError, match="at least one plan"):
        TensorBatch([])


def test_rejects_non_single_pass_plans(reconvergent_circuit):
    analyzer = SinglePassAnalyzer(reconvergent_circuit,
                                  use_correlation=True)
    with pytest.raises(TypeError, match="CompiledSinglePass"):
        TensorBatch([analyzer.plan])


def test_rejects_mixed_dtypes_without_override():
    c17, cu = get_benchmark("c17"), get_benchmark("cu")
    p32 = _plan(c17, dtype=np.float32)
    p64 = _plan(cu)
    with pytest.raises(ValueError, match="disagree on dtype"):
        TensorBatch([p32, p64])
    batch = TensorBatch([p32, p64], dtype=np.float64)
    assert batch.dtype == np.float64


def test_wrong_batch_count_raises():
    plans = [_plan(get_benchmark("c17")), _plan(get_benchmark("cu"))]
    batch = TensorBatch(plans)
    with pytest.raises(ValueError, match="eps batches"):
        batch.run_sweep([EPS])


def test_float32_batch():
    plans = [_plan(get_benchmark(n), dtype=np.float32)
             for n in ("c17", "b9")]
    batch = TensorBatch(plans)
    sweeps = batch.run_sweep([EPS, EPS])
    for plan, sweep in zip(plans, sweeps):
        assert sweep.p01.dtype == np.float32
        np.testing.assert_allclose(sweep.p01, plan.run_sweep(EPS).p01,
                                   atol=1e-6)


def test_pad_accounting():
    plans = [_plan(get_benchmark(n)) for n in ("c17", "c432")]
    batch = TensorBatch(plans)
    widest = max(len(p.node_names) for p in plans)
    assert batch.n_rows == widest
    assert batch.pad_waste_rows == sum(widest - len(p.node_names)
                                       for p in plans)


# -- engine cross-session batching --------------------------------------
def _plain(circuit, eps):
    return {"op": "analyze", "circuit": circuit, "eps": eps,
            "correlation": False}


def test_engine_tensor_batch_matches_solo_submits():
    """Cross-session coalesced responses carry the same result payloads
    as solo requests (same point count → bit-identical kernels)."""
    reqs = [_plain("c17", [0.01, 0.05]), _plain("b9", [0.01, 0.05]),
            _plain("cu", [0.01, 0.05])]
    with AnalysisEngine() as eng:
        batched = eng.submit_many(reqs)
        assert [r.method for r in batched] == ["single-pass-tensor"] * 3
        for r in batched:
            assert r.ok
            assert r.telemetry["batch_circuits"] == 3
    with AnalysisEngine() as eng:
        solo = [eng.submit(dict(req)) for req in reqs]
    for b, s in zip(batched, solo):
        assert s.ok
        assert json.dumps(b.result, sort_keys=True) == \
            json.dumps(s.result, sort_keys=True)


def test_engine_tensor_batch_same_session_coalescing_still_works():
    """Same-circuit requests still coalesce inside their group."""
    reqs = [_plain("c17", [0.01]), _plain("c17", [0.05]),
            _plain("b9", [0.02])]
    with AnalysisEngine() as eng:
        responses = eng.submit_many(reqs)
    assert all(r.ok for r in responses)
    assert responses[0].coalesced == 2
    assert responses[2].coalesced == 1
    assert all(r.method == "single-pass-tensor" for r in responses)


def test_engine_correlation_requests_bypass_tensor_path():
    reqs = [
        {"op": "analyze", "circuit": "c17", "eps": [0.01],
         "correlation": True},
        {"op": "analyze", "circuit": "b9", "eps": [0.01],
         "correlation": True},
    ]
    with AnalysisEngine() as eng:
        responses = eng.submit_many(reqs)
    assert all(r.ok for r in responses)
    assert all(r.method != "single-pass-tensor" for r in responses)
    assert all("batch_circuits" not in r.telemetry for r in responses)


def test_engine_single_group_skips_tensor_path():
    """One eligible session is exactly what plain coalescing handles."""
    reqs = [_plain("c17", [0.01]), _plain("c17", [0.05])]
    with AnalysisEngine() as eng:
        responses = eng.submit_many(reqs)
    assert all(r.ok for r in responses)
    assert all(r.method != "single-pass-tensor" for r in responses)


def test_engine_bad_circuit_degrades_gracefully():
    """An unresolvable group falls out of the tensor set; the rest batch."""
    reqs = [_plain("c17", [0.01]), _plain("no-such-circuit", [0.01]),
            _plain("b9", [0.01])]
    with AnalysisEngine() as eng:
        responses = eng.submit_many(reqs)
    assert responses[0].ok and responses[2].ok
    assert not responses[1].ok
    assert responses[0].method == "single-pass-tensor"
    assert responses[2].method == "single-pass-tensor"


def test_engine_tensor_batch_cache_reused():
    reqs = [_plain("c17", [0.01]), _plain("b9", [0.01])]
    with AnalysisEngine() as eng:
        eng.submit_many(reqs)
        assert len(eng._tensor_batches) == 1
        first = next(iter(eng._tensor_batches.values()))
        eng.submit_many(reqs)
        assert len(eng._tensor_batches) == 1
        assert next(iter(eng._tensor_batches.values())) is first


def test_engine_tensor_metrics_emitted():
    from repro.obs import metrics as obs_metrics
    obs_metrics.reset()
    obs_metrics.set_enabled(True)
    try:
        with AnalysisEngine() as eng:
            eng.submit_many([_plain("c17", [0.01]), _plain("b9", [0.01])])
        names = {entry["name"] for entry in obs_metrics.snapshot()}
        assert "engine.tensor_batch.circuits" in names
        assert "engine.tensor_batch.pad_waste_rows" in names
        assert "tensor_pass.sweeps" in names
    finally:
        obs_metrics.set_enabled(False)
        obs_metrics.reset()
