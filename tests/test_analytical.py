"""Tests for the analytical baselines (von Neumann, compositional rules)."""

import math

import numpy as np
import pytest

from repro.circuits import get_benchmark, parity_tree
from repro.reliability import (
    SinglePassAnalyzer,
    compositional_delta,
    exhaustive_exact_reliability,
    multiplexing_trajectory,
    nand_excitation_step,
    nand_fixed_points,
    von_neumann_threshold,
)
from repro.sim import monte_carlo_reliability


class TestVonNeumann:
    def test_noise_free_nand_step(self):
        assert nand_excitation_step(1.0, 1.0, 0.0) == 0.0
        assert nand_excitation_step(0.0, 0.0, 0.0) == 1.0
        assert nand_excitation_step(1.0, 0.0, 0.0) == 1.0

    def test_fully_noisy_step_is_half(self):
        for x in (0.0, 0.3, 1.0):
            assert nand_excitation_step(x, x, 0.5) == pytest.approx(0.5)

    def test_fixed_points_satisfy_equation(self):
        for eps in (0.0, 0.05, 0.2):
            for x in nand_fixed_points(eps):
                assert nand_excitation_step(x, x, eps) == pytest.approx(x)

    def test_trajectory_oscillates_below_threshold(self):
        traj = multiplexing_trajectory(0.99, 0.01, 50)
        # NAND is inverting: consecutive values alternate high/low.
        assert traj[-1] != pytest.approx(traj[-2], abs=0.05)

    def test_trajectory_collapses_above_threshold(self):
        traj = multiplexing_trajectory(0.99, 0.2, 400)
        assert traj[-1] == pytest.approx(traj[-2], abs=1e-3)

    def test_threshold_matches_analytic_value(self):
        analytic = (3.0 - math.sqrt(7.0)) / 4.0
        numeric = von_neumann_threshold(tolerance=1e-6)
        assert numeric == pytest.approx(analytic, abs=2e-3)


class TestCompositional:
    def test_exact_on_uniform_symmetric_cases(self):
        # Parity tree: signals are uniform and errors symmetric, so the
        # compositional simplification happens to be exact here.
        circuit = parity_tree(8)
        eps = 0.07
        comp = compositional_delta(circuit, eps)
        exact = exhaustive_exact_reliability(circuit, eps)
        out = circuit.outputs[0]
        assert comp[out] == pytest.approx(exact.per_output[out], abs=1e-9)

    def test_substantial_error_on_real_logic(self):
        """The paper's Sec. 2 claim: compositional rules lose accuracy on
        irregular multi-level logic while the single pass does not."""
        circuit = get_benchmark("cu")
        eps = 0.05
        comp = compositional_delta(circuit, eps)
        sp = SinglePassAnalyzer(circuit).run(eps).per_output
        mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                     seed=2).per_output
        err_comp = np.mean([abs(comp[o] - mc[o]) / max(mc[o], 1e-9)
                            for o in circuit.outputs])
        err_sp = np.mean([abs(sp[o] - mc[o]) / max(mc[o], 1e-9)
                          for o in circuit.outputs])
        assert err_comp > 5 * err_sp

    def test_all_outputs_reported(self, full_adder_circuit):
        comp = compositional_delta(full_adder_circuit, 0.1)
        assert set(comp) == {"s", "cout"}
        assert all(0 <= v <= 1 for v in comp.values())

    def test_zero_eps(self, full_adder_circuit):
        comp = compositional_delta(full_adder_circuit, 0.0)
        assert all(v == 0.0 for v in comp.values())

    def test_eps_validated(self, full_adder_circuit):
        with pytest.raises(ValueError):
            compositional_delta(full_adder_circuit, 0.9)
