"""Functional tests for the datapath generators."""

import pytest

from repro.circuits import (
    alu_slice,
    barrel_shifter,
    carry_lookahead_adder,
    kogge_stone_adder,
    priority_encoder,
    ripple_carry_adder,
)


def _adder_check(circuit, width):
    for a in range(1 << width):
        for b in range(1 << width):
            for cin in (0, 1):
                assignment = {"cin": cin}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                out = circuit.evaluate_outputs(assignment)
                got = sum(out[f"sum{i}"] << i for i in range(width))
                got += out["cout"] << width
                assert got == a + b + cin, (a, b, cin)


class TestAdders:
    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_carry_lookahead(self, width):
        _adder_check(carry_lookahead_adder(width), width)

    @pytest.mark.parametrize("width", [1, 2, 4, 5])
    def test_kogge_stone(self, width):
        _adder_check(kogge_stone_adder(width), width)

    def test_depth_ordering(self):
        """Structural contrast: ripple is deepest, Kogge-Stone shallowest
        (at equal width), CLA in between but fanout-heavy."""
        width = 8
        ripple = ripple_carry_adder(width)
        ks = kogge_stone_adder(width)
        assert ks.depth < ripple.depth

    def test_width_validated(self):
        with pytest.raises(ValueError):
            carry_lookahead_adder(0)
        with pytest.raises(ValueError):
            kogge_stone_adder(0)


class TestBarrelShifter:
    @pytest.mark.parametrize("width_bits", [1, 2, 3])
    def test_shifts(self, width_bits):
        circuit = barrel_shifter(width_bits)
        width = 1 << width_bits
        for data in (0b1, 0b1011 & ((1 << width) - 1), (1 << width) - 1):
            for shift in range(width):
                assignment = {f"d{i}": (data >> i) & 1 for i in range(width)}
                assignment.update(
                    {f"s{i}": (shift >> i) & 1 for i in range(width_bits)})
                out = circuit.evaluate_outputs(assignment)
                got = sum(out[f"y{i}"] << i for i in range(width))
                expected = (data << shift) & ((1 << width) - 1)
                assert got == expected, (data, shift)

    def test_validation(self):
        with pytest.raises(ValueError):
            barrel_shifter(0)


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 4, 5])
    def test_encoding(self, width):
        circuit = priority_encoder(width)
        bits = max(1, (width - 1).bit_length())
        for pattern in range(1 << width):
            assignment = {f"x{i}": (pattern >> i) & 1 for i in range(width)}
            out = circuit.evaluate_outputs(assignment)
            if pattern == 0:
                assert out["valid"] == 0
            else:
                assert out["valid"] == 1
                expected = max(i for i in range(width)
                               if (pattern >> i) & 1)
                got = sum(out[f"y{b}"] << b for b in range(bits))
                assert got == expected, pattern

    def test_validation(self):
        with pytest.raises(ValueError):
            priority_encoder(1)


class TestAlu:
    @pytest.mark.parametrize("width", [1, 3])
    def test_all_operations(self, width):
        circuit = alu_slice(width)
        mask = (1 << width) - 1
        for a in range(1 << width):
            for b in range(1 << width):
                for op, (op1, op0) in enumerate(
                        [(0, 0), (0, 1), (1, 0), (1, 1)]):
                    assignment = {"op0": op0, "op1": op1, "cin": 0}
                    for i in range(width):
                        assignment[f"a{i}"] = (a >> i) & 1
                        assignment[f"b{i}"] = (b >> i) & 1
                    out = circuit.evaluate_outputs(assignment)
                    got = sum(out[f"r{i}"] << i for i in range(width))
                    expected = [a & b, a | b, a ^ b, (a + b) & mask][op]
                    assert got == expected, (a, b, op)
                    if op == 3:
                        assert out["cout"] == ((a + b) >> width) & 1

    def test_add_with_carry_in(self):
        circuit = alu_slice(2)
        assignment = {"a0": 1, "a1": 0, "b0": 0, "b1": 0,
                      "op0": 1, "op1": 1, "cin": 1}
        out = circuit.evaluate_outputs(assignment)
        assert out["r0"] == 0 and out["r1"] == 1  # 1 + 0 + 1 = 2
