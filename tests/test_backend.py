"""Tests for the pluggable array-backend shim (:mod:`repro.backend`).

numpy is the zero-dependency default; CuPy/torch are strictly optional.
Tests that need a real accelerator library are skipped when it is not
importable — the graceful-fallback tests run everywhere precisely
because the library is allowed to be absent.
"""

import importlib.util
import warnings

import numpy as np
import pytest

from repro import backend as backend_mod
from repro.backend import (
    BACKEND_NAMES,
    BackendUnavailable,
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
)
from repro.reliability.compiled_pass import CompiledSinglePass
from repro.reliability.single_pass import SinglePassAnalyzer

HAVE_TORCH = importlib.util.find_spec("torch") is not None


@pytest.fixture(autouse=True)
def _reset_default(monkeypatch):
    """Each test starts from the stock default (no env var, no override)."""
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


# -- resolution ---------------------------------------------------------
def test_numpy_is_default():
    assert default_backend_name() == "numpy"
    bk = get_backend()
    assert bk.name == "numpy"
    assert bk.is_numpy


def test_backend_instances_are_memoized():
    assert get_backend("numpy") is get_backend("numpy")


def test_auto_resolves_default():
    assert get_backend("auto") is get_backend(None)


def test_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown array backend"):
        get_backend("tensorflow")
    with pytest.raises(ValueError, match="unknown array backend"):
        set_default_backend("tensorflow")


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_BACKEND", "torch")
    assert default_backend_name() == "torch"


def test_set_default_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_BACKEND", "torch")
    set_default_backend("numpy")
    assert default_backend_name() == "numpy"
    set_default_backend("auto")
    assert default_backend_name() == "torch"


def test_available_backends_probe():
    caps = available_backends()
    assert caps["numpy"] is True
    assert set(caps) == set(BACKEND_NAMES)


# -- graceful fallback --------------------------------------------------
@pytest.mark.skipif(HAVE_TORCH, reason="torch installed: no fallback")
def test_missing_torch_falls_back_to_numpy():
    with pytest.warns(RuntimeWarning, match="torch"):
        bk = get_backend("torch")
    assert bk.is_numpy


@pytest.mark.skipif(HAVE_TORCH, reason="torch installed: no fallback")
def test_missing_torch_strict_raises():
    with pytest.raises(BackendUnavailable):
        get_backend("torch", strict=True)


@pytest.mark.skipif(HAVE_TORCH, reason="torch installed: no fallback")
def test_kernel_sweeps_despite_missing_backend(tree_circuit):
    """A plan pinned to an absent backend still answers (on numpy)."""
    analyzer = SinglePassAnalyzer(tree_circuit, use_correlation=False,
                                  backend="torch")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        sweep = analyzer.sweep([0.01, 0.05])
    ref = SinglePassAnalyzer(tree_circuit,
                             use_correlation=False).sweep([0.01, 0.05])
    assert np.array_equal(sweep.p01, ref.p01)


# -- dtype threading (satellite: no silent float64 up-cast) -------------
def test_float32_plan_stays_float32(reconvergent_circuit):
    analyzer = SinglePassAnalyzer(reconvergent_circuit,
                                  use_correlation=False,
                                  dtype=np.float32)
    plan = analyzer.plan
    assert plan is not None and plan.dtype == np.float32
    for level in plan.levels:
        for group in level:
            assert group.flip_mask.dtype == np.float32
            assert group.w_masked0.dtype == np.float32
            assert group.w_masked1.dtype == np.float32
    sweep = plan.run_sweep([0.01, 0.05, 0.2])
    assert sweep.p01.dtype == np.float32
    assert sweep.p10.dtype == np.float32
    assert sweep.per_output.dtype == np.float32


def test_float32_parity_with_float64(reconvergent_circuit):
    eps = [0.01, 0.05, 0.2]
    s32 = SinglePassAnalyzer(reconvergent_circuit, use_correlation=False,
                             dtype=np.float32).sweep(eps)
    s64 = SinglePassAnalyzer(reconvergent_circuit,
                             use_correlation=False).sweep(eps)
    assert s64.p01.dtype == np.float64
    np.testing.assert_allclose(s32.p01, s64.p01, atol=1e-6)
    np.testing.assert_allclose(s32.per_output, s64.per_output, atol=1e-6)


def test_compiled_pass_dtype_parameter(full_adder_circuit):
    from repro.probability.weights import compute_weights
    w = compute_weights(full_adder_circuit, method="exhaustive")
    plan = CompiledSinglePass(full_adder_circuit, w, dtype=np.float32)
    assert plan.dtype == np.float32
    plan64 = CompiledSinglePass(full_adder_circuit, w)
    assert plan64.dtype == np.float64


# -- numpy facade semantics (what generic kernels rely on) --------------
def test_numpy_facade_ops():
    bk = get_backend("numpy")
    a = bk.asarray([1.0, 2.0, 3.0])
    assert bk.to_numpy(a) is a  # zero-copy on the numpy backend
    z = bk.zeros((2, 2), dtype=np.float32)
    assert z.dtype == np.float32 and not z.any()
    w = bk.where(a > 1.5, a, bk.zeros((3,), dtype=a.dtype))
    np.testing.assert_array_equal(bk.to_numpy(w), [0.0, 2.0, 3.0])
    c = bk.clip(a, 1.5, 2.5)
    np.testing.assert_array_equal(bk.to_numpy(c), [1.5, 2.0, 2.5])
    bk.synchronize()  # no-op, must not raise


# -- torch backend (only with torch installed; CI torch job) ------------
@pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
def test_torch_backend_resolves():
    bk = get_backend("torch", strict=True)
    assert bk.name == "torch"
    assert not bk.is_numpy
    x = bk.asarray(np.arange(6, dtype=np.float64).reshape(2, 3))
    back = bk.to_numpy(x)
    np.testing.assert_array_equal(back, np.arange(6).reshape(2, 3))


@pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
def test_torch_kernel_parity(reconvergent_circuit, full_adder_circuit):
    eps = [0.005, 0.05, 0.15]
    for circuit in (reconvergent_circuit, full_adder_circuit):
        ref = SinglePassAnalyzer(circuit, use_correlation=False).sweep(eps)
        got = SinglePassAnalyzer(circuit, use_correlation=False,
                                 backend="torch").sweep(eps)
        assert isinstance(got.p01, np.ndarray)
        np.testing.assert_allclose(got.p01, ref.p01, atol=1e-12)
        np.testing.assert_allclose(got.per_output, ref.per_output,
                                   atol=1e-12)


@pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
def test_torch_tensor_batch_parity(reconvergent_circuit,
                                   full_adder_circuit, tree_circuit):
    from repro.reliability.tensor_pass import TensorBatch
    eps = [0.01, 0.08]
    plans = [SinglePassAnalyzer(c, use_correlation=False).plan
             for c in (reconvergent_circuit, full_adder_circuit,
                       tree_circuit)]
    batch = TensorBatch(plans, backend="torch")
    sweeps = batch.run_sweep([eps] * len(plans))
    for plan, sweep in zip(plans, sweeps):
        ref = plan.run_sweep(eps)
        np.testing.assert_allclose(sweep.p01, ref.p01, atol=1e-12)


# -- module coherence ---------------------------------------------------
def test_backend_names_match_constructors():
    assert set(BACKEND_NAMES) == set(backend_mod._CONSTRUCTORS)
