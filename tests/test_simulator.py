"""Tests for the bit-parallel logic simulator."""

import numpy as np
import pytest

from repro.circuit import GateType
from repro.circuits import c17, parity_tree, random_circuit
from repro.sim import patterns
from repro.sim.simulator import (
    CompiledCircuit,
    evaluate_gate_words,
    exhaustive_simulate,
    signal_probabilities,
    simulate,
    simulate_outputs,
)
from tests.conftest import all_assignments


class TestGateWordEvaluation:
    def test_all_types_match_scalar(self):
        from repro.circuit import evaluate_gate
        a = np.array([0b0011], dtype=np.uint64)
        b = np.array([0b0101], dtype=np.uint64)
        for gate_type in (GateType.AND, GateType.NAND, GateType.OR,
                          GateType.NOR, GateType.XOR, GateType.XNOR):
            out = evaluate_gate_words(gate_type, [a, b], 1)
            for bit in range(4):
                expected = evaluate_gate(
                    gate_type, [(int(a[0]) >> bit) & 1,
                                (int(b[0]) >> bit) & 1])
                assert (int(out[0]) >> bit) & 1 == expected

    def test_unary(self):
        a = np.array([0b01], dtype=np.uint64)
        assert int(evaluate_gate_words(GateType.NOT, [a], 1)[0]) & 0b11 == 0b10
        assert int(evaluate_gate_words(GateType.BUF, [a], 1)[0]) & 0b11 == 0b01

    def test_constants(self):
        assert patterns.popcount(
            evaluate_gate_words(GateType.CONST0, [], 2)) == 0
        assert patterns.popcount(
            evaluate_gate_words(GateType.CONST1, [], 2)) == 128

    def test_wide_gates(self):
        rows = [np.array([0b1100], dtype=np.uint64),
                np.array([0b1010], dtype=np.uint64),
                np.array([0b1111], dtype=np.uint64)]
        out = evaluate_gate_words(GateType.AND, rows, 1)
        assert int(out[0]) & 0b1111 == 0b1000


class TestSimulate:
    def test_matches_reference_evaluator(self, full_adder_circuit):
        values = exhaustive_simulate(full_adder_circuit)
        for k, assignment in enumerate(all_assignments(full_adder_circuit)):
            expected = full_adder_circuit.evaluate(assignment)
            for node, pack in values.items():
                got = (int(pack[0]) >> k) & 1
                assert got == expected[node], (node, assignment)

    def test_random_circuits_match_evaluator(self):
        rng = np.random.default_rng(9)
        for seed in range(3):
            circuit = random_circuit(5, 20, 3, seed=seed)
            values = exhaustive_simulate(circuit)
            for k, assignment in enumerate(all_assignments(circuit)):
                expected = circuit.evaluate(assignment)
                for out in circuit.outputs:
                    word, bit = divmod(k, 64)
                    got = (int(values[out][word]) >> bit) & 1
                    assert got == expected[out]

    def test_simulate_outputs_subset(self, full_adder_circuit):
        pack = patterns.exhaustive_pack(full_adder_circuit.inputs)
        outs = simulate_outputs(full_adder_circuit, pack)
        assert set(outs) == {"s", "cout"}

    def test_pack_length_mismatch_rejected(self, full_adder_circuit):
        pack = patterns.exhaustive_pack(full_adder_circuit.inputs)
        pack["a"] = patterns.zeros(7)
        with pytest.raises(ValueError):
            simulate(full_adder_circuit, pack)

    def test_exhaustive_input_limit(self):
        circuit = random_circuit(30, 5, 2, seed=0)
        with pytest.raises(ValueError):
            exhaustive_simulate(circuit)


class TestNoiseInjection:
    def test_forced_flip_changes_everything_downstream(self,
                                                       full_adder_circuit):
        compiled = CompiledCircuit(full_adder_circuit)
        pack = patterns.exhaustive_pack(full_adder_circuit.inputs)
        n_words = len(pack["a"])
        clean = compiled.run(pack)
        flip_all = patterns.ones(n_words)

        def noise(name, words):
            return flip_all if name == "t" else None

        noisy = compiled.run(pack, noise=noise)
        t_slot = compiled.index["t"]
        assert np.array_equal(clean[t_slot] ^ flip_all, noisy[t_slot])
        # s = t xor cin flips everywhere too.
        s_slot = compiled.index["s"]
        assert np.array_equal(clean[s_slot] ^ flip_all, noisy[s_slot])

    def test_no_noise_matches_plain_run(self, full_adder_circuit):
        compiled = CompiledCircuit(full_adder_circuit)
        pack = patterns.exhaustive_pack(full_adder_circuit.inputs)
        r1 = compiled.run(pack)
        r2 = compiled.run(pack, noise=lambda name, words: None)
        for a, b in zip(r1, r2):
            assert np.array_equal(a, b)


class TestSignalProbabilities:
    def test_exact_small_circuit(self, full_adder_circuit):
        probs = signal_probabilities(full_adder_circuit)
        assert probs["s"] == pytest.approx(0.5)
        assert probs["c1"] == pytest.approx(0.25)

    def test_sampled_close_to_exact(self):
        circuit = parity_tree(6)
        exact = signal_probabilities(circuit)
        sampled = signal_probabilities(circuit, n_patterns=1 << 15,
                                       rng=np.random.default_rng(3))
        for node in circuit.topological_order():
            assert sampled[node] == pytest.approx(exact[node], abs=0.02)

    def test_biased_inputs(self):
        circuit = c17()
        probs = signal_probabilities(
            circuit, n_patterns=1 << 15,
            input_probs={name: 1.0 for name in circuit.inputs})
        values = circuit.evaluate({name: 1 for name in circuit.inputs})
        for out in circuit.outputs:
            assert probs[out] == pytest.approx(values[out])
