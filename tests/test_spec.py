"""Tests for the canonical eps-spec parser (repro.spec)."""

import pytest

from repro.circuits import fig2_circuit
from repro.spec import (
    DEFAULT_KEY,
    epsilon_of,
    parse_eps_list,
    parse_epsilon,
    validate_epsilon,
    validate_sweep_specs,
)


class TestEpsilonOf:
    def test_scalar_applies_everywhere(self):
        assert epsilon_of(0.1, "anything") == 0.1

    def test_mapping_lookup(self):
        assert epsilon_of({"g1": 0.2}, "g1") == 0.2

    def test_missing_gate_is_noise_free(self):
        assert epsilon_of({"g1": 0.2}, "g2") == 0.0

    def test_default_key_fallback(self):
        spec = {DEFAULT_KEY: 0.05, "g1": 0.0}
        assert epsilon_of(spec, "g1") == 0.0
        assert epsilon_of(spec, "g2") == 0.05

    def test_int_coerced_to_float(self):
        value = epsilon_of(0, "g")
        assert value == 0.0 and isinstance(value, float)


class TestValidateEpsilon:
    def test_scalar_in_range_ok(self):
        validate_epsilon(0.5, fig2_circuit())

    def test_scalar_out_of_range(self):
        with pytest.raises(ValueError, match=r"outside \[0, 0.5\]"):
            validate_epsilon(0.6, fig2_circuit())

    def test_unknown_gate(self):
        with pytest.raises(ValueError, match="unknown gate 'nope'"):
            validate_epsilon({"nope": 0.1}, fig2_circuit())

    def test_input_node_rejected(self):
        circuit = fig2_circuit()
        with pytest.raises(ValueError, match="non-gate node"):
            validate_epsilon({circuit.inputs[0]: 0.1}, circuit)

    def test_default_key_exempt_from_membership(self):
        validate_epsilon({DEFAULT_KEY: 0.1}, fig2_circuit())

    def test_default_key_still_range_checked(self):
        with pytest.raises(ValueError, match=r"outside \[0, 0.5\]"):
            validate_epsilon({DEFAULT_KEY: 0.7}, fig2_circuit())


class TestParseEpsilon:
    def test_number_passthrough(self):
        assert parse_epsilon(0.05) == 0.05

    def test_numeric_string(self):
        assert parse_epsilon("1e-10") == 1e-10

    def test_mapping_with_string_values(self):
        assert parse_epsilon({"g1": "0.1"}) == {"g1": 0.1}

    @pytest.mark.parametrize("bad", [None, True, "zap", [0.1]])
    def test_rejects_non_specs(self, bad):
        with pytest.raises(ValueError, match="invalid eps"):
            parse_epsilon(bad)

    def test_mapping_with_bad_value(self):
        with pytest.raises(ValueError, match="invalid eps for gate 'g1'"):
            parse_epsilon({"g1": "zap"})


class TestParseEpsList:
    def test_single(self):
        assert parse_eps_list("0.05") == [0.05]

    def test_comma_separated(self):
        assert parse_eps_list("0.01,0.05,0.1") == [0.01, 0.05, 0.1]

    def test_bad_token(self):
        with pytest.raises(ValueError, match="invalid eps spec"):
            parse_eps_list("0.1,zap")

    def test_empty(self):
        with pytest.raises(ValueError, match="empty eps spec"):
            parse_eps_list(",,")

    def test_out_of_range(self):
        with pytest.raises(ValueError, match=r"outside \[0, 0.5\]"):
            parse_eps_list("0.9")


class TestValidateSweepSpecs:
    def test_materializes(self):
        circuit = fig2_circuit()
        specs, eps10 = validate_sweep_specs(circuit, iter([0.1, 0.2]))
        assert specs == [0.1, 0.2] and eps10 is None

    def test_empty_sweep(self):
        with pytest.raises(ValueError, match="at least one eps point"):
            validate_sweep_specs(fig2_circuit(), [])

    def test_eps10_length_mismatch(self):
        with pytest.raises(ValueError, match="eps10 sweep length"):
            validate_sweep_specs(fig2_circuit(), [0.1, 0.2], [0.1])

    def test_range_checks_every_point(self):
        with pytest.raises(ValueError, match=r"outside \[0, 0.5\]"):
            validate_sweep_specs(fig2_circuit(), [0.1, 0.9])
