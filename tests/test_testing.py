"""Tests for the stuck-at testing substrate (faults, fault sim, ATPG)."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, parity_tree
from repro.reliability import bdd_observabilities
from repro.testing import (
    AtpgEngine,
    Fault,
    StuckAt,
    collapse_faults,
    full_fault_list,
    hard_faults,
    random_pattern_testability,
    redundant_faults,
    simulate_faults,
)


class TestFaultLists:
    def test_full_list_counts(self, full_adder_circuit):
        faults = full_fault_list(full_adder_circuit)
        # 3 inputs + 5 gates, two faults each.
        assert len(faults) == 16

    def test_exclude_inputs(self, full_adder_circuit):
        faults = full_fault_list(full_adder_circuit, include_inputs=False)
        assert len(faults) == 10
        assert all(f.node not in full_adder_circuit.inputs for f in faults)

    def test_collapse_reduces(self):
        circuit = c17()
        full = full_fault_list(circuit)
        collapsed = collapse_faults(circuit)
        assert len(collapsed) < len(full)
        assert set(collapsed) <= set(full)

    def test_collapse_keeps_fanout_stems(self):
        circuit = c17()
        collapsed = set(collapse_faults(circuit))
        # Node 11 fans out to gates 16 and 19: both its faults must stay.
        assert Fault("11", StuckAt.ZERO) in collapsed
        assert Fault("11", StuckAt.ONE) in collapsed

    def test_fault_str(self):
        assert str(Fault("g1", StuckAt.ZERO)) == "g1/SA0"
        assert str(Fault("g1", StuckAt.ONE)) == "g1/SA1"


class TestFaultSimulation:
    def test_exhaustive_detection_probabilities_sum_to_observability(
            self, reconvergent_circuit):
        sim = simulate_faults(reconvergent_circuit, exhaustive=True)
        obs = bdd_observabilities(reconvergent_circuit)
        for gate, o in obs.items():
            sa0 = sim.detection_probability(Fault(gate, StuckAt.ZERO))
            sa1 = sim.detection_probability(Fault(gate, StuckAt.ONE))
            assert sa0 + sa1 == pytest.approx(o), gate

    def test_full_coverage_on_c17(self):
        # c17 is fully testable: every fault detectable.
        sim = simulate_faults(c17(), exhaustive=True)
        assert sim.coverage() == 1.0
        assert not sim.undetected_faults

    def test_detecting_output_recorded(self):
        sim = simulate_faults(c17(), exhaustive=True)
        for fault in sim.detected_faults:
            assert sim.detecting_output[fault] in c17().outputs

    def test_redundant_fault_never_detected(self):
        # y = a AND (NOT a) == 0: the output SA0 is undetectable.
        b = CircuitBuilder("red")
        a = b.input("a")
        b.outputs(b.and_(a, b.not_(a), name="y"))
        circuit = b.build()
        sim = simulate_faults(circuit, exhaustive=True)
        assert sim.detection_probability(Fault("y", StuckAt.ZERO)) == 0.0
        assert sim.detection_probability(Fault("y", StuckAt.ONE)) == 1.0

    def test_random_close_to_exhaustive(self, full_adder_circuit):
        exact = simulate_faults(full_adder_circuit, exhaustive=True)
        sampled = simulate_faults(full_adder_circuit, n_patterns=1 << 14,
                                  seed=3)
        for fault in full_fault_list(full_adder_circuit):
            assert sampled.detection_probability(fault) == pytest.approx(
                exact.detection_probability(fault), abs=0.02)

    def test_input_fault_simulation(self):
        circuit = parity_tree(4)
        sim = simulate_faults(circuit, exhaustive=True)
        # Parity tree: every line fully observable; input SA faults detected
        # whenever the input carries the complementary value: prob 1/2.
        assert sim.detection_probability(
            Fault("x0", StuckAt.ZERO)) == pytest.approx(0.5)
        assert sim.detection_probability(
            Fault("x0", StuckAt.ONE)) == pytest.approx(0.5)


class TestTestability:
    def test_profile_fields(self, reconvergent_circuit):
        profile = random_pattern_testability(reconvergent_circuit,
                                             exhaustive=True)
        for name, entry in profile.items():
            assert set(entry) == {"controllability", "sa0", "sa1",
                                  "observability"}
            assert 0 <= entry["controllability"] <= 1
            assert entry["observability"] == pytest.approx(
                entry["sa0"] + entry["sa1"])

    def test_observability_matches_reliability_observability(
            self, reconvergent_circuit):
        profile = random_pattern_testability(reconvergent_circuit,
                                             exhaustive=True)
        obs = bdd_observabilities(reconvergent_circuit)
        for gate, o in obs.items():
            assert profile[gate]["observability"] == pytest.approx(o)

    def test_hard_faults_on_wide_and(self):
        # Deep AND cone: SA0 at the root needs all-ones side inputs.
        b = CircuitBuilder("wideand")
        xs = b.input_bus("x", 8)
        acc = xs[0]
        for x in xs[1:]:
            acc = b.and_(acc, x)
        b.outputs(acc)
        circuit = b.build()
        hard = hard_faults(circuit, threshold=0.02, n_patterns=1 << 12)
        assert any(f.stuck_at is StuckAt.ZERO for f in hard)


class TestAtpg:
    def test_generated_tests_actually_detect(self):
        circuit = c17()
        engine = AtpgEngine(circuit)
        for fault in full_fault_list(circuit):
            vector = engine.generate_test(fault)
            assert vector is not None
            # Verify by evaluation: faulty circuit differs at some output.
            clean = circuit.evaluate_outputs(vector)
            faulty_val = fault.stuck_at.value_bit
            values = dict(vector)
            all_values = circuit.evaluate(values)
            all_values[fault.node] = faulty_val
            order = circuit.topological_order()
            from repro.circuit import evaluate_gate
            for name in order[order.index(fault.node) + 1:]:
                node = circuit.node(name)
                if node.gate_type.is_logic:
                    all_values[name] = evaluate_gate(
                        node.gate_type,
                        [all_values[f] for f in node.fanins])
            assert any(all_values[o] != clean[o] for o in circuit.outputs)

    def test_detection_probability_matches_fault_sim(self,
                                                     reconvergent_circuit):
        engine = AtpgEngine(reconvergent_circuit)
        sim = simulate_faults(reconvergent_circuit, exhaustive=True)
        for fault in full_fault_list(reconvergent_circuit):
            assert engine.detection_probability(fault) == pytest.approx(
                sim.detection_probability(fault))

    def test_redundancy_proved(self):
        b = CircuitBuilder("red")
        a = b.input("a")
        b.outputs(b.and_(a, b.not_(a), name="y"))
        circuit = b.build()
        engine = AtpgEngine(circuit)
        assert engine.is_redundant(Fault("y", StuckAt.ZERO))
        assert not engine.is_redundant(Fault("y", StuckAt.ONE))
        assert engine.generate_test(Fault("y", StuckAt.ZERO)) is None

    def test_redundant_faults_listing(self):
        b = CircuitBuilder("red2")
        a, c = b.inputs("a", "c")
        tied = b.or_(a, b.not_(a))  # constant 1
        b.outputs(b.and_(tied, c, name="y"))
        circuit = b.build()
        redundant = redundant_faults(circuit)
        assert Fault(tied, StuckAt.ONE) in redundant

    def test_test_set_covers_everything(self):
        circuit = c17()
        engine = AtpgEngine(circuit)
        tests, redundant = engine.generate_test_set()
        assert not redundant
        # Replay the compacted test set through the fault simulator.
        from repro.sim import patterns as pat
        import numpy as np
        faults = full_fault_list(circuit)
        undetected = set(faults)
        for vector in tests:
            for fault in list(undetected):
                diff = engine.difference(fault)
                vec = [vector[n] for n in sorted(
                    engine.bdds.var_index, key=engine.bdds.var_index.get)]
                if diff.evaluate(vec):
                    undetected.discard(fault)
        assert not undetected
        # Compaction: far fewer tests than faults.
        assert len(tests) < len(faults)
