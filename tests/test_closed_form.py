"""Tests for the observability-based closed form (paper Eqn. 3)."""

import math

import pytest

from repro.reliability import (
    ObservabilityModel,
    closed_form_delta,
    exhaustive_exact_reliability,
)


class TestClosedFormDelta:
    def test_matches_manual_product(self):
        obs = {"g1": 0.5, "g2": 1.0, "g3": 0.25}
        eps = 0.1
        expected = 0.5 * (1 - (1 - 2 * eps * 0.5) * (1 - 2 * eps * 1.0)
                          * (1 - 2 * eps * 0.25))
        assert closed_form_delta(eps, obs) == pytest.approx(expected)

    def test_single_fully_observable_noisy_gate(self):
        # One gate, o = 1: delta = eps exactly.
        assert closed_form_delta(0.17, {"g": 1.0}) == pytest.approx(0.17)

    def test_zero_eps(self):
        assert closed_form_delta(0.0, {"g": 0.7, "h": 0.4}) == 0.0

    def test_saturates_at_half(self):
        assert closed_form_delta(0.5, {"g": 1.0, "h": 0.5}) == pytest.approx(
            0.5)

    def test_tiny_eps_no_underflow(self):
        # The soft-error regime: eps ~ 1e-20 must not round to zero.
        obs = {f"g{i}": 0.5 for i in range(100)}
        delta = closed_form_delta(1e-20, obs)
        assert delta == pytest.approx(100 * 1e-20 * 0.5, rel=1e-6)

    def test_per_gate_eps(self):
        obs = {"g1": 1.0, "g2": 1.0}
        delta = closed_form_delta({"g1": 0.1}, obs)  # g2 noise-free
        assert delta == pytest.approx(0.1)


class TestObservabilityModel:
    def test_first_order_accuracy(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        eps = 1e-4
        exact = exhaustive_exact_reliability(reconvergent_circuit, eps).delta()
        assert model.delta(eps) == pytest.approx(exact, rel=1e-2)

    def test_exact_on_single_gate(self):
        from repro.circuit import CircuitBuilder
        b = CircuitBuilder("one")
        a, c = b.inputs("a", "c")
        b.outputs(b.and_(a, c, name="y"))
        circuit = b.build()
        model = ObservabilityModel(circuit)
        for eps in (0.05, 0.2, 0.4):
            exact = exhaustive_exact_reliability(circuit, eps).delta()
            assert model.delta(eps) == pytest.approx(exact)

    def test_curve(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        curve = model.curve([0.0, 0.1, 0.2])
        assert curve[0.0] == 0.0
        assert curve[0.1] < curve[0.2]

    def test_eps_validated(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        with pytest.raises(ValueError):
            model.delta(0.8)

    def test_multi_output_needs_name(self, full_adder_circuit):
        with pytest.raises(ValueError):
            ObservabilityModel(full_adder_circuit)
        model = ObservabilityModel(full_adder_circuit, output="s")
        assert 0 < model.delta(0.1) <= 0.5

    def test_precomputed_observabilities(self):
        model_obs = {"g": 1.0}
        from repro.circuit import CircuitBuilder
        b = CircuitBuilder("one")
        a, c = b.inputs("a", "c")
        b.outputs(b.and_(a, c, name="g"))
        model = ObservabilityModel(b.build(), observabilities=model_obs)
        assert model.delta(0.3) == pytest.approx(0.3)


class TestGradient:
    def test_derivative_matches_finite_difference(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        eps = {g: 0.1 for g in reconvergent_circuit.topological_gates()}
        h = 1e-7
        for gate in reconvergent_circuit.topological_gates():
            up = dict(eps)
            up[gate] = eps[gate] + h
            fd = (model.delta(up) - model.delta(eps)) / h
            assert model.derivative(eps, gate) == pytest.approx(fd, rel=1e-4)

    def test_gradient_matches_derivative(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        eps = 0.15
        grad = model.gradient(eps)
        for gate in reconvergent_circuit.topological_gates():
            assert grad[gate] == pytest.approx(model.derivative(eps, gate))

    def test_unknown_gate_rejected(self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        with pytest.raises(KeyError):
            model.derivative(0.1, "ghost")

    def test_critical_gates_ranked_by_observability_at_uniform_eps(
            self, reconvergent_circuit):
        model = ObservabilityModel(reconvergent_circuit)
        top = model.critical_gates(0.05, top_k=1)[0]
        # At uniform small eps the most critical gate is the most observable.
        best = max(model.observabilities, key=model.observabilities.get)
        assert top == best
