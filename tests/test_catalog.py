"""Tests for the benchmark catalog and the Table 2 stand-ins."""

import numpy as np
import pytest

from repro.circuit import circuit_stats, reconvergent_gates
from repro.circuits import (
    TABLE2_BENCHMARKS,
    benchmark_entry,
    get_benchmark,
    list_benchmarks,
)

#: Pinned gate counts of the deterministic stand-ins (paper's counts in
#: the catalog metadata; exact matching is impossible without the original
#: netlists — see DESIGN.md substitutions).
EXPECTED_GATES = {
    "x2": 56, "cu": 59, "b9": 210, "c499": 467, "c1355": 980,
    "c1908": 699, "c2670": 756, "frg2": 1024, "c3540": 1466, "i10": 2643,
    "c432": 160, "c880": 383, "c6288": 1440,
}


class TestCatalog:
    def test_all_table2_benchmarks_registered(self):
        for name in TABLE2_BENCHMARKS:
            assert name in list_benchmarks()

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("c9999")

    def test_entries_have_descriptions(self):
        for name in list_benchmarks():
            assert benchmark_entry(name).description

    def test_paper_gate_counts_recorded(self):
        assert benchmark_entry("i10").paper_gates == 2643
        assert benchmark_entry("c499").paper_gates == 650


class TestStandins:
    @pytest.mark.parametrize("name", sorted(EXPECTED_GATES))
    def test_gate_counts_pinned(self, name):
        assert get_benchmark(name).num_gates == EXPECTED_GATES[name]

    @pytest.mark.parametrize("name", ["x2", "b9", "c499"])
    def test_deterministic(self, name):
        a = get_benchmark(name)
        b = get_benchmark(name)
        assert [(n.name, n.gate_type, n.fanins) for n in a] == \
            [(n.name, n.gate_type, n.fanins) for n in b]

    def test_all_validate(self):
        for name in list_benchmarks():
            get_benchmark(name).validate()

    def test_c1355_equivalent_to_c499(self):
        c499 = get_benchmark("c499")
        c1355 = get_benchmark("c1355")
        assert set(c1355.outputs) == set(c499.outputs)
        rng = np.random.default_rng(0)
        for _ in range(25):
            assignment = {name: int(rng.integers(2))
                          for name in c499.inputs}
            assert (c499.evaluate_outputs(assignment)
                    == c1355.evaluate_outputs(assignment))

    def test_c1355_is_nand_only_modulo_buffers(self):
        c1355 = get_benchmark("c1355")
        kinds = {c1355.node(g).gate_type.value for g in c1355.gates}
        assert "xor" not in kinds and "xnor" not in kinds

    def test_c499_heavily_reconvergent(self):
        c499 = get_benchmark("c499")
        # Syndrome fanout makes most decode gates reconvergent.
        assert len(reconvergent_gates(c499)) > 100

    def test_c499_io_counts_match_paper(self):
        c499 = get_benchmark("c499")
        assert len(c499.inputs) == 41
        assert len(c499.outputs) == 32

    def test_fig8_pair_same_function(self):
        low = get_benchmark("b9_low_fanout")
        high = get_benchmark("b9_high_fanout")
        assert low.num_gates == high.num_gates
        assert low.depth < high.depth
        rng = np.random.default_rng(3)
        for _ in range(20):
            assignment = {name: int(rng.integers(2)) for name in low.inputs}
            assert (low.evaluate_outputs(assignment)
                    == high.evaluate_outputs(assignment))

    def test_c6288_is_a_real_multiplier(self):
        circuit = get_benchmark("c6288")
        # 3 x 5 = 15 through the full array.
        assignment = {f"a{i}": (3 >> i) & 1 for i in range(16)}
        assignment.update({f"b{i}": (5 >> i) & 1 for i in range(16)})
        out = circuit.evaluate_outputs(assignment)
        got = sum(v << int(k[1:]) for k, v in out.items())
        assert got == 15

    def test_stats_scale_with_paper_order(self):
        sizes = [get_benchmark(n).num_gates for n in TABLE2_BENCHMARKS]
        # Table 2 is ordered by size except for our c499/c1355 pair detail;
        # the first and last rows must bracket everything.
        assert sizes[0] == min(sizes)
        assert sizes[-1] == max(sizes)
