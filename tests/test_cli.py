"""Tests for the command-line interface (run in-process)."""

import json

import pytest

from repro.cli import main
from repro.io import save_bench
from repro.circuits import c17


class TestInfoAndBench:
    def test_info_benchmark(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "gates=    6" in out
        assert "22, 23" in out

    def test_bench_listing(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "c499" in out and "i10" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["info", "not_a_circuit"])

    def test_info_from_file(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        save_bench(c17(), path)
        assert main(["info", str(path)]) == 0
        assert "gates=    6" in capsys.readouterr().out

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("junk")
        with pytest.raises(SystemExit):
            main(["info", str(path)])


class TestAnalysisCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.05,0.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("eps=") == 2
        assert "delta[22]" in out and "delta[23]" in out

    def test_analyze_no_correlation(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.1",
                     "--no-correlation"]) == 0
        assert "0 corr pairs" in capsys.readouterr().out

    def test_analyze_bad_eps(self):
        with pytest.raises(SystemExit):
            main(["analyze", "c17", "--eps", "0.7"])

    def test_analyze_empty_eps_rejected(self):
        for spec in (",", "", " , "):
            with pytest.raises(SystemExit, match="empty eps spec"):
                main(["analyze", "c17", "--eps", spec])

    def test_analyze_malformed_eps_rejected(self):
        with pytest.raises(SystemExit, match="invalid eps spec"):
            main(["analyze", "c17", "--eps", "0.1,zap"])

    def test_analyze_json(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.05,0.1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["circuit"] == "c17"
        assert [p["eps"] for p in doc["points"]] == [0.05, 0.1]
        for point in doc["points"]:
            assert set(point["per_output"]) == {"22", "23"}
            assert point["correlation_pairs"] > 0
        assert len(doc["elapsed_s"]) == 2
        assert all(t > 0 for t in doc["elapsed_s"])

    def test_mc(self, capsys):
        assert main(["mc", "c17", "--eps", "0.1",
                     "--patterns", "4096"]) == 0
        out = capsys.readouterr().out
        assert "any-output" in out

    def test_closed(self, capsys):
        assert main(["closed", "fig1a", "--eps", "0.05"]) == 0
        assert "delta[y]" in capsys.readouterr().out

    def test_curve(self, capsys):
        assert main(["curve", "fig1a", "--points", "3",
                     "--patterns", "4096"]) == 0
        out = capsys.readouterr().out
        assert "single-pass" in out and "monte-carlo" in out

    def test_analyze_and_mc_agree(self, capsys):
        main(["analyze", "c17", "--eps", "0.1"])
        sp_out = capsys.readouterr().out
        main(["mc", "c17", "--eps", "0.1", "--patterns", "65536"])
        mc_out = capsys.readouterr().out

        def grab(text, key):
            for line in text.splitlines():
                if key in line:
                    return float(line.split("=")[-1])
            raise AssertionError(key)

        assert grab(sp_out, "delta[22]") == pytest.approx(
            grab(mc_out, "delta[22]"), abs=0.01)


class TestExtendedCommands:
    def test_testability(self, capsys):
        assert main(["testability", "c17"]) == 0
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out
        assert "SA" in out

    def test_stratified(self, capsys):
        assert main(["stratified", "c17", "--eps", "1e-6",
                     "--samples", "20", "--patterns", "1024"]) == 0
        out = capsys.readouterr().out
        assert "any-output" in out and "e-0" in out

    def test_harden(self, capsys):
        assert main(["harden", "fig2", "--budget", "4"]) == 0
        out = capsys.readouterr().out
        assert "better" in out and "upgraded" in out

    def test_stratified_bad_eps(self):
        with pytest.raises(SystemExit):
            main(["stratified", "c17", "--eps", "0.9"])


class TestObservabilityFlags:
    def test_metrics_out_runlog(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["analyze", "c17", "--eps", "0.01,0.05",
                     "--metrics-out", str(out)]) == 0
        records = [json.loads(line) for line in
                   out.read_text().splitlines() if line.strip()]
        assert len(records) == 2  # one per eps point
        for record, eps in zip(records, (0.01, 0.05)):
            from repro.obs.runlog import SCHEMA_VERSION
            assert record["schema_version"] == SCHEMA_VERSION
            assert record["command"] == "analyze"
            assert record["circuit"]["name"] == "c17"
            assert record["circuit"]["gates"] == 6
            assert record["params"]["eps"] == eps
            assert set(record["results"]["per_output"]) == {"22", "23"}
            assert record["library"]["version"]
            assert all(p["duration_s"] > 0 for p in record["phases"])
        # analyze dispatches one vectorized correlated sweep up front, so
        # the sweep phases and kernel metrics land in the first record.
        all_phases = {p["name"] for r in records for p in r["phases"]}
        assert "single_pass.sweep" in all_phases
        assert "compiled_pass.run_sweep_correlated" in all_phases
        all_metrics = {m["name"] for r in records for m in r["metrics"]}
        assert "compiled_pass.gate_evals" in all_metrics
        assert "correlation.pairs_tracked" in all_metrics
        # Weights are computed once: only the first record has that phase.
        assert "single_pass.weights" in {p["name"]
                                         for p in records[0]["phases"]}
        assert "single_pass.weights" not in {p["name"]
                                             for p in records[1]["phases"]}

    def test_trace_out_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["analyze", "c17", "--eps", "0.05",
                     "--trace-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "cli.analyze" in names
        assert "single_pass.sweep" in names
        assert "compiled_pass.run_sweep_correlated" in names
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_mc_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "mc.jsonl"
        assert main(["mc", "c17", "--eps", "0.1", "--patterns", "4096",
                     "--metrics-out", str(out)]) == 0
        (record,) = [json.loads(line) for line in
                     out.read_text().splitlines() if line.strip()]
        metric = {m["name"]: m for m in record["metrics"]}
        assert metric["mc.samples"]["value"] == 4096
        assert 0 < metric["mc.rel_stderr"]["value"] < 1
        assert record["results"]["any_output"] > 0

    def test_command_without_emit_writes_catchall(self, tmp_path, capsys):
        out = tmp_path / "info.jsonl"
        assert main(["info", "c17", "--metrics-out", str(out)]) == 0
        (record,) = [json.loads(line) for line in
                     out.read_text().splitlines() if line.strip()]
        assert record["command"] == "info"

    def test_metrics_out_truncates_previous_run(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["analyze", "c17", "--eps", "0.05", "--metrics-out", str(out)])
        main(["analyze", "c17", "--eps", "0.05", "--metrics-out", str(out)])
        records = [line for line in out.read_text().splitlines()
                   if line.strip()]
        assert len(records) == 1

    def test_unwritable_obs_paths_fail_fast(self, tmp_path):
        missing = tmp_path / "no_such_dir" / "out"
        with pytest.raises(SystemExit, match="cannot write --metrics-out"):
            main(["analyze", "c17", "--eps", "0.05",
                  "--metrics-out", str(missing)])
        with pytest.raises(SystemExit, match="cannot write --trace-out"):
            main(["analyze", "c17", "--eps", "0.05",
                  "--trace-out", str(missing)])

    def test_obs_disabled_after_run(self, tmp_path, capsys):
        from repro import obs
        main(["analyze", "c17", "--eps", "0.05",
              "--metrics-out", str(tmp_path / "r.jsonl")])
        assert not obs.is_enabled()

    def test_verbose_logging(self, tmp_path, capsys, caplog):
        import logging
        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["analyze", "c17", "--eps", "0.05", "-v"]) == 0
        assert any("loaded benchmark c17" in r.message
                   for r in caplog.records)

    def test_report_json(self, capsys):
        assert main(["report", "c17", "--patterns", "1024",
                     "--no-testability", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["circuit"] == "c17"
        assert doc["structure"]["gates"] == 6
        assert doc["delta_table"]
        assert doc["testability"] is None


class TestConvert:
    def test_bench_to_blif_and_verilog(self, tmp_path, capsys):
        blif = tmp_path / "c17.blif"
        assert main(["convert", "c17", str(blif)]) == 0
        assert blif.read_text().startswith(".model")
        v = tmp_path / "c17.v"
        assert main(["convert", "c17", str(v)]) == 0
        assert "module" in v.read_text()

    def test_blif_reload(self, tmp_path, capsys):
        blif = tmp_path / "c17.blif"
        main(["convert", "c17", str(blif)])
        assert main(["info", str(blif)]) == 0

    def test_unsupported_output(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["convert", "c17", str(tmp_path / "c.json")])
