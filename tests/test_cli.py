"""Tests for the command-line interface (run in-process)."""

import pytest

from repro.cli import main
from repro.io import save_bench
from repro.circuits import c17


class TestInfoAndBench:
    def test_info_benchmark(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "gates=    6" in out
        assert "22, 23" in out

    def test_bench_listing(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "c499" in out and "i10" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["info", "not_a_circuit"])

    def test_info_from_file(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        save_bench(c17(), path)
        assert main(["info", str(path)]) == 0
        assert "gates=    6" in capsys.readouterr().out

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("junk")
        with pytest.raises(SystemExit):
            main(["info", str(path)])


class TestAnalysisCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.05,0.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("eps=") == 2
        assert "delta[22]" in out and "delta[23]" in out

    def test_analyze_no_correlation(self, capsys):
        assert main(["analyze", "c17", "--eps", "0.1",
                     "--no-correlation"]) == 0
        assert "0 corr pairs" in capsys.readouterr().out

    def test_analyze_bad_eps(self):
        with pytest.raises(SystemExit):
            main(["analyze", "c17", "--eps", "0.7"])

    def test_mc(self, capsys):
        assert main(["mc", "c17", "--eps", "0.1",
                     "--patterns", "4096"]) == 0
        out = capsys.readouterr().out
        assert "any-output" in out

    def test_closed(self, capsys):
        assert main(["closed", "fig1a", "--eps", "0.05"]) == 0
        assert "delta[y]" in capsys.readouterr().out

    def test_curve(self, capsys):
        assert main(["curve", "fig1a", "--points", "3",
                     "--patterns", "4096"]) == 0
        out = capsys.readouterr().out
        assert "single-pass" in out and "monte-carlo" in out

    def test_analyze_and_mc_agree(self, capsys):
        main(["analyze", "c17", "--eps", "0.1"])
        sp_out = capsys.readouterr().out
        main(["mc", "c17", "--eps", "0.1", "--patterns", "65536"])
        mc_out = capsys.readouterr().out

        def grab(text, key):
            for line in text.splitlines():
                if key in line:
                    return float(line.split("=")[-1])
            raise AssertionError(key)

        assert grab(sp_out, "delta[22]") == pytest.approx(
            grab(mc_out, "delta[22]"), abs=0.01)


class TestExtendedCommands:
    def test_testability(self, capsys):
        assert main(["testability", "c17"]) == 0
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out
        assert "SA" in out

    def test_stratified(self, capsys):
        assert main(["stratified", "c17", "--eps", "1e-6",
                     "--samples", "20", "--patterns", "1024"]) == 0
        out = capsys.readouterr().out
        assert "any-output" in out and "e-0" in out

    def test_harden(self, capsys):
        assert main(["harden", "fig2", "--budget", "4"]) == 0
        out = capsys.readouterr().out
        assert "better" in out and "upgraded" in out

    def test_stratified_bad_eps(self):
        with pytest.raises(SystemExit):
            main(["stratified", "c17", "--eps", "0.9"])


class TestConvert:
    def test_bench_to_blif_and_verilog(self, tmp_path, capsys):
        blif = tmp_path / "c17.blif"
        assert main(["convert", "c17", str(blif)]) == 0
        assert blif.read_text().startswith(".model")
        v = tmp_path / "c17.v"
        assert main(["convert", "c17", str(v)]) == 0
        assert "module" in v.read_text()

    def test_blif_reload(self, tmp_path, capsys):
        blif = tmp_path / "c17.blif"
        main(["convert", "c17", str(blif)])
        assert main(["info", str(blif)]) == 0

    def test_unsupported_output(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["convert", "c17", str(tmp_path / "c.json")])
