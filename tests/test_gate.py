"""Unit tests for the gate primitive layer."""

import pytest

from repro.circuit.gate import (
    GateArityError,
    GateType,
    base_type,
    check_arity,
    evaluate_gate,
    inverted_type,
    parse_gate_type,
    truth_table,
)


class TestGateTypeProperties:
    def test_input_flags(self):
        assert GateType.INPUT.is_input
        assert not GateType.INPUT.is_logic
        assert not GateType.INPUT.is_constant

    def test_constant_flags(self):
        for t in (GateType.CONST0, GateType.CONST1):
            assert t.is_constant
            assert not t.is_logic
            assert not t.is_input

    def test_logic_flags(self):
        for t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                  GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
            assert t.is_logic


class TestArity:
    def test_unary_accepts_one(self):
        check_arity(GateType.NOT, 1)
        check_arity(GateType.BUF, 1)

    @pytest.mark.parametrize("arity", [0, 2, 3])
    def test_unary_rejects_other(self, arity):
        with pytest.raises(GateArityError):
            check_arity(GateType.NOT, arity)

    @pytest.mark.parametrize("gate_type", [
        GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
        GateType.XOR, GateType.XNOR])
    def test_multi_input_needs_two(self, gate_type):
        with pytest.raises(GateArityError):
            check_arity(gate_type, 1)
        check_arity(gate_type, 2)
        check_arity(gate_type, 5)

    def test_input_and_const_take_no_fanins(self):
        check_arity(GateType.INPUT, 0)
        check_arity(GateType.CONST0, 0)
        with pytest.raises(GateArityError):
            check_arity(GateType.INPUT, 1)
        with pytest.raises(GateArityError):
            check_arity(GateType.CONST1, 2)


class TestEvaluate:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
    def test_and(self, a, b, expected):
        assert evaluate_gate(GateType.AND, [a, b]) == expected
        assert evaluate_gate(GateType.NAND, [a, b]) == expected ^ 1

    @pytest.mark.parametrize("a,b,expected", [
        (0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)])
    def test_or(self, a, b, expected):
        assert evaluate_gate(GateType.OR, [a, b]) == expected
        assert evaluate_gate(GateType.NOR, [a, b]) == expected ^ 1

    @pytest.mark.parametrize("a,b,expected", [
        (0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor(self, a, b, expected):
        assert evaluate_gate(GateType.XOR, [a, b]) == expected
        assert evaluate_gate(GateType.XNOR, [a, b]) == expected ^ 1

    def test_not_and_buf(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.NOT, [1]) == 0
        assert evaluate_gate(GateType.BUF, [0]) == 0
        assert evaluate_gate(GateType.BUF, [1]) == 1

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, []) == 0
        assert evaluate_gate(GateType.CONST1, []) == 1

    def test_wide_gates(self):
        assert evaluate_gate(GateType.AND, [1, 1, 1]) == 1
        assert evaluate_gate(GateType.AND, [1, 0, 1]) == 0
        assert evaluate_gate(GateType.OR, [0, 0, 0, 0]) == 0
        assert evaluate_gate(GateType.OR, [0, 0, 1, 0]) == 1

    def test_xor_is_parity_for_wide_gates(self):
        assert evaluate_gate(GateType.XOR, [1, 1, 1]) == 1
        assert evaluate_gate(GateType.XOR, [1, 1, 0]) == 0
        assert evaluate_gate(GateType.XNOR, [1, 1, 1]) == 0

    def test_input_evaluation_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])


class TestTruthTable:
    def test_and2(self):
        assert truth_table(GateType.AND, 2) == (0, 0, 0, 1)

    def test_or2(self):
        assert truth_table(GateType.OR, 2) == (0, 1, 1, 1)

    def test_nand2(self):
        assert truth_table(GateType.NAND, 2) == (1, 1, 1, 0)

    def test_xor3_parity(self):
        tt = truth_table(GateType.XOR, 3)
        for k in range(8):
            assert tt[k] == bin(k).count("1") % 2

    def test_not(self):
        assert truth_table(GateType.NOT, 1) == (1, 0)

    def test_bit_order_is_lsb_fanin0(self):
        # index 1 means fanin 0 = 1, fanin 1 = 0.
        tt = truth_table(GateType.AND, 2)
        assert tt[1] == 0 and tt[3] == 1

    def test_constant_tables(self):
        assert truth_table(GateType.CONST0, 0) == (0,)
        assert truth_table(GateType.CONST1, 0) == (1,)

    def test_arity_validated(self):
        with pytest.raises(GateArityError):
            truth_table(GateType.NOT, 2)


class TestInversionHelpers:
    @pytest.mark.parametrize("a,b", [
        (GateType.AND, GateType.NAND),
        (GateType.OR, GateType.NOR),
        (GateType.XOR, GateType.XNOR),
        (GateType.BUF, GateType.NOT),
        (GateType.CONST0, GateType.CONST1),
    ])
    def test_inverted_pairs(self, a, b):
        assert inverted_type(a) is b
        assert inverted_type(b) is a

    def test_input_has_no_complement(self):
        with pytest.raises(ValueError):
            inverted_type(GateType.INPUT)

    def test_base_type(self):
        assert base_type(GateType.NAND) == (GateType.AND, True)
        assert base_type(GateType.AND) == (GateType.AND, False)
        assert base_type(GateType.NOT) == (GateType.BUF, True)

    def test_inverted_type_truth_tables_complement(self):
        for t in (GateType.AND, GateType.OR, GateType.XOR):
            tt = truth_table(t, 2)
            inv = truth_table(inverted_type(t), 2)
            assert all(a ^ b == 1 for a, b in zip(tt, inv))


class TestParseGateType:
    @pytest.mark.parametrize("name,expected", [
        ("AND", GateType.AND), ("nand", GateType.NAND),
        ("Or", GateType.OR), ("NOT", GateType.NOT),
        ("inv", GateType.NOT), ("buff", GateType.BUF),
        ("BUF", GateType.BUF), ("xnor", GateType.XNOR),
        ("vdd", GateType.CONST1), ("gnd", GateType.CONST0),
    ])
    def test_known_names(self, name, expected):
        assert parse_gate_type(name) is expected

    def test_whitespace_tolerated(self):
        assert parse_gate_type("  nor ") is GateType.NOR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_gate_type("mystery")
