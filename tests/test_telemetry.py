"""Engine telemetry: envelopes, cross-process splicing, SLO stats, export.

Covers the distributed-telemetry layer end to end:

* per-request ``telemetry`` blocks (always on, obs flags or not);
* ``TelemetryPayload`` round-trips and cross-process trace splicing —
  the acceptance case fans a sweep across two worker lanes and asserts
  ONE coherent Chrome trace with worker kernel spans re-parented under
  the parent's ``engine.lane`` spans;
* ``EngineStats`` rolling percentiles / cache windows / lane gauges;
* the ``ping``/``stats``/``metrics`` serve ops, with the Prometheus
  exposition parsed line by line;
* ``repro batch`` round-trip and stdio-vs-TCP envelope byte-matching.
"""

import io
import json
import re
import socket
import threading

import pytest

from repro import obs
from repro.engine import AnalysisEngine, EngineStats, handle_line, run_batch
from repro.engine.serve import serve_stream, serve_tcp
from repro.obs.propagate import TelemetryPayload, capture
from repro.obs.trace import Span

OPTS = {"weights": "sampled", "n_patterns": 1 << 10}

#: Keys every telemetry block must carry, in any envelope.
TELEMETRY_KEYS = {"request_id", "queue_wait_ms", "coalesced", "lane",
                  "cache", "ladder", "kernel_ms", "total_ms"}

#: One Prometheus sample line: name{labels} value
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? (?P<value>[0-9eE.+-]+|NaN)$")


def parse_prometheus(text):
    """Validate exposition text; return {(name, labels): float} samples."""
    samples = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "summary"), line
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        samples[(match["name"], match["labels"] or "")] = \
            float(match["value"])
    return samples, types


@pytest.fixture()
def engine():
    with AnalysisEngine(max_sessions=8) as eng:
        yield eng


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTelemetryEnvelope:
    def test_always_populated_without_obs(self, engine):
        assert not obs.is_enabled()
        response = engine.submit({"op": "analyze", "circuit": "c17",
                                  "eps": [0.05], "options": OPTS})
        assert response.ok
        assert response.telemetry is not None
        assert set(response.telemetry) == TELEMETRY_KEYS
        # The obs block stays flag-gated; telemetry does not.
        assert response.obs is None
        assert response.to_dict()["telemetry"] == response.telemetry

    def test_cache_fields_track_warmth(self, engine):
        first = engine.submit({"op": "analyze", "circuit": "c17",
                               "eps": [0.05], "options": OPTS})
        assert first.telemetry["cache"] == {
            "session": "miss", "weights": "cold", "plan": "cold"}
        second = engine.submit({"op": "analyze", "circuit": "c17",
                                "eps": [0.1], "options": OPTS})
        assert second.telemetry["cache"] == {
            "session": "hit", "weights": "warm", "plan": "warm"}

    def test_ladder_and_kernel_fields(self, engine):
        response = engine.submit({"op": "analyze", "circuit": "c17",
                                  "eps": [0.05], "options": OPTS})
        telemetry = response.telemetry
        assert telemetry["ladder"] == response.method
        assert telemetry["ladder"].startswith("single-pass")
        assert 0.0 < telemetry["kernel_ms"] <= telemetry["total_ms"]
        assert telemetry["lane"] is None
        assert telemetry["queue_wait_ms"] == 0.0
        assert re.fullmatch(r"[0-9a-f]+-[0-9a-f]{6}",
                            telemetry["request_id"])

    def test_queue_wait_measured_through_serve(self, engine):
        envelope = handle_line(engine, json.dumps(
            {"op": "analyze", "circuit": "c17", "eps": [0.05],
             "options": OPTS}))
        assert envelope["ok"]
        assert envelope["telemetry"]["queue_wait_ms"] >= 0.0

    def test_coalesced_batch_telemetry(self, engine):
        requests = [{"op": "analyze", "circuit": "c17", "eps": [eps],
                     "id": i, "options": OPTS}
                    for i, eps in enumerate((0.01, 0.05, 0.1))]
        responses = engine.submit_many(requests)
        for response in responses:
            assert response.coalesced == 3
            assert response.telemetry["coalesced"] == 3
        # One kernel call: all members share its (divided) kernel time.
        kernels = {r.telemetry["kernel_ms"] for r in responses}
        assert len(kernels) == 1

    def test_error_envelope_still_carries_telemetry(self, engine):
        response = engine.submit({"op": "analyze", "circuit": "zork"})
        assert not response.ok
        assert response.telemetry is not None
        assert set(response.telemetry) == TELEMETRY_KEYS

    def test_transient_session_marked(self, engine):
        from repro.probability import ErrorProbability
        response = engine.submit({
            "op": "analyze", "circuit": "c17", "eps": [0.05],
            "options": {**OPTS, "input_errors": {
                "1": ErrorProbability(p01=0.1, p10=0.1)}}})
        assert response.ok
        assert response.telemetry["cache"]["session"] == "transient"


class TestEngineStats:
    def test_percentiles_on_known_latencies(self):
        stats = EngineStats(window=128)
        for ms in range(1, 101):  # 1..100 ms uniform
            stats.record("analyze", ms / 1e3)
        pct = stats.percentiles("analyze")
        assert pct["p50"] == pytest.approx(0.050, rel=0.25)
        assert pct["p95"] == pytest.approx(0.095, rel=0.25)
        assert pct["p99"] == pytest.approx(0.099, rel=0.25)
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_window_rolls(self):
        stats = EngineStats(window=10)
        for _ in range(50):
            stats.record("analyze", 1.0)
        for _ in range(10):
            stats.record("analyze", 0.001)
        summary = stats.ops_summary()["analyze"]
        assert summary["count"] == 60        # lifetime counter
        assert summary["window"] == 10       # ring depth
        assert summary["p99_ms"] < 100       # the 1 s samples rolled out

    def test_cache_windows(self):
        stats = EngineStats()
        for state in ("miss", "hit", "hit", "hit"):
            stats.record("analyze", 0.001,
                         cache={"session": state, "weights": "transient"})
        rates = stats.cache_rates()
        assert rates["session"]["hit_rate"] == pytest.approx(0.75)
        assert "weights" not in rates  # neutral states never counted

    def test_errors_and_lanes(self):
        stats = EngineStats()
        stats.record("analyze", 0.001, ok=False, lane=0)
        stats.record_lane(1, requests=4, busy_s=0.5)
        summary = stats.ops_summary()["analyze"]
        assert summary["errors"] == 1
        lanes = stats.lane_summary()
        assert lanes["0"]["requests"] == 1
        assert lanes["1"]["requests"] == 4
        assert lanes["1"]["busy_s"] == pytest.approx(0.5)
        assert 0.0 <= lanes["1"]["utilization"] <= 1.0

    def test_to_prometheus_quantile_series(self):
        stats = EngineStats()
        for ms in (1, 2, 3, 50):
            stats.record("analyze", ms / 1e3,
                         cache={"session": "hit"}, lane=0)
        samples, types = parse_prometheus(stats.to_prometheus())
        name = "repro_engine_request_latency_seconds"
        assert types[name] == "summary"
        for quantile in ("0.5", "0.95", "0.99"):
            key = (name, f'{{op="analyze",quantile="{quantile}"}}')
            assert key in samples
        assert samples[(name + "_count", '{op="analyze"}')] == 4
        assert samples[("repro_engine_requests_total",
                        '{op="analyze"}')] == 4
        assert samples[("repro_engine_cache_hit_ratio",
                        '{tier="session"}')] == 1.0


class TestTelemetryPayload:
    def test_dict_round_trip(self):
        payload = TelemetryPayload(
            spans=[Span(name="a", start=0.5, duration=0.1, depth=0,
                        parent=None, thread_id=7, attrs={"k": 1})],
            metrics=[{"type": "counter", "name": "n", "labels": {},
                      "value": 3}],
            pid=1234, captured_at=1e9)
        clone = TelemetryPayload.from_dict(
            json.loads(json.dumps(payload.to_dict())))
        assert clone.pid == 1234
        assert clone.spans[0].name == "a"
        assert clone.spans[0].attrs == {"k": 1}
        assert clone.metrics == payload.metrics

    def test_capture_and_merge(self):
        obs.enable()
        with obs.trace_span("worker.kernel"):
            pass
        obs.metrics.inc("worker.items", 5)
        payload = capture()
        assert payload.pid > 0
        assert [s.name for s in payload.spans] == ["worker.kernel"]
        obs.reset()
        merged = payload.merge_into(at=2.0, parent="engine.lane")
        assert merged == 1
        span = obs.get_tracer().spans[0]
        assert span.start == pytest.approx(2.0)
        assert span.parent == "engine.lane"
        assert span.pid == payload.pid
        assert obs.metrics.get_registry().value("worker.items") == 5


class TestFanOutSplicedTrace:
    """Acceptance: one spliced Chrome trace across ≥2 worker lanes."""

    def test_two_lane_sweep_splices_one_trace(self):
        obs.enable()
        # c17 routes to lane 0 and c432 to lane 1 under crc32 % 2.
        requests = []
        for name in ("c17", "c432"):
            requests += [{"op": "analyze", "circuit": name, "eps": [eps],
                          "id": f"{name}-{eps}", "options": OPTS}
                         for eps in (0.01, 0.05)]
        with AnalysisEngine(max_sessions=8) as engine:
            responses = engine.submit_many(requests, jobs=2)
            stats = engine.stats()
        assert all(r.ok for r in responses)
        lanes = {r.telemetry["lane"] for r in responses}
        assert lanes == {0, 1}
        for response in responses:
            telemetry = response.telemetry
            assert set(telemetry) == TELEMETRY_KEYS
            assert telemetry["queue_wait_ms"] >= 0.0
            assert telemetry["cache"]["session"] in ("hit", "miss")
            assert telemetry["ladder"].startswith("single-pass")

        tracer = obs.get_tracer()
        spans = tracer.spans
        lane_spans = [s for s in spans if s.name == "engine.lane"]
        assert len(lane_spans) == 2
        worker = [s for s in spans if s.pid is not None]
        assert len({s.pid for s in worker}) == 2  # two worker processes
        # Worker kernel spans arrived and sit under the dispatch span.
        kernel = [s for s in worker
                  if s.name.startswith(("single_pass.", "compiled_pass."))]
        assert kernel, [s.name for s in worker]
        roots = [s for s in worker if s.parent == "engine.lane"]
        assert roots
        for span in worker:  # re-timed onto the parent's epoch
            assert span.start >= min(l.start for l in lane_spans) - 1e-6

        trace = tracer.to_chrome_trace()
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert 1 in pids and len(pids) == 3  # parent + both workers
        names = {e["name"] for e in events}
        assert "engine.lane" in names
        assert any(n.startswith(("single_pass.", "compiled_pass."))
                   for n in names)
        # Worker counters merged home into the parent registry.
        merged = {m["name"] for m in obs.metrics.snapshot()}
        assert any(name.startswith("engine.") for name in merged), merged
        # Lane utilization observed by the rolling stats.
        assert set(stats["rolling"]["lanes"]) == {"0", "1"}

    def test_fan_out_without_obs_ships_no_payload(self):
        assert not obs.is_enabled()
        requests = [{"op": "analyze", "circuit": name, "eps": [0.05],
                     "options": OPTS} for name in ("c17", "c432")]
        with AnalysisEngine(max_sessions=8) as engine:
            responses = engine.submit_many(requests, jobs=2)
        assert all(r.ok for r in responses)
        assert {r.telemetry["lane"] for r in responses} == {0, 1}
        assert obs.get_tracer().spans == []
        assert obs.metrics.snapshot() == []


class TestServeControlOps:
    def test_ping_is_cheap_echo(self, engine):
        envelope = handle_line(engine, '{"id": 9, "op": "ping"}')
        assert envelope == {"id": 9, "ok": True, "op": "ping",
                            "uptime_s": envelope["uptime_s"]}
        assert envelope["uptime_s"] >= 0.0

    def test_stats_carries_identity_and_rolling(self, engine):
        from repro import __version__
        engine.submit({"op": "analyze", "circuit": "c17", "eps": [0.05],
                       "options": OPTS})
        envelope = handle_line(engine, '{"op": "stats"}')
        stats = envelope["stats"]
        assert stats["version"] == __version__
        assert stats["uptime_s"] > 0.0
        assert stats["started_at"] > 1e9  # wall clock, not monotonic
        ops = stats["rolling"]["ops"]
        assert ops["analyze"]["count"] == 1
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            assert ops["analyze"][key] >= 0.0
        assert stats["rolling"]["cache"]["session"]["hit_rate"] == 0.0

    def test_metrics_op_emits_valid_exposition(self, engine):
        for eps in (0.01, 0.05, 0.1):
            engine.submit({"op": "analyze", "circuit": "c17",
                           "eps": [eps], "options": OPTS})
        envelope = handle_line(engine, '{"op": "metrics"}')
        assert envelope["ok"] and envelope["op"] == "metrics"
        assert envelope["content_type"].startswith("text/plain")
        samples, types = parse_prometheus(envelope["exposition"])
        name = "repro_engine_request_latency_seconds"
        assert types[name] == "summary"
        quantiles = [q for (n, labels), _ in samples.items()
                     if n == name
                     for q in re.findall(r'quantile="([^"]+)"', labels)]
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert samples[("repro_engine_requests_total",
                        '{op="analyze"}')] == 3


def _normalize(envelope):
    """Strip volatile fields so two envelopes compare byte-for-byte."""
    env = json.loads(json.dumps(envelope))  # deep copy
    env["elapsed_s"] = 0.0
    telemetry = env.get("telemetry")
    if telemetry:
        telemetry["request_id"] = "RID"
        for key in ("queue_wait_ms", "kernel_ms", "total_ms"):
            telemetry[key] = 0.0
    return json.dumps(env, sort_keys=True)


class TestEnvelopeRoundTrip:
    REQUEST = {"id": 1, "op": "analyze", "circuit": "c17",
               "eps": [0.01, 0.05], "options": OPTS}

    def test_batch_round_trips_telemetry(self, engine, tmp_path):
        lines = [json.dumps(self.REQUEST),
                 json.dumps({**self.REQUEST, "id": 2, "eps": [0.1]})]
        out = io.StringIO()
        failures = run_batch(engine, lines, out)
        assert failures == 0
        envelopes = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert len(envelopes) == 2
        for envelope in envelopes:
            assert set(envelope["telemetry"]) == TELEMETRY_KEYS
            assert envelope["telemetry"]["coalesced"] == 2
            assert envelope["telemetry"]["queue_wait_ms"] >= 0.0

    def test_stdio_and_tcp_envelopes_byte_match(self):
        line = json.dumps(self.REQUEST)
        with AnalysisEngine(max_sessions=8) as eng:
            eng.submit(self.REQUEST)  # warm, so both paths hit the cache
            out = io.StringIO()
            serve_stream(eng, io.StringIO(line + "\n"), out)
            stdio_env = json.loads(out.getvalue())

            ready = threading.Event()
            box = {}

            def on_ready(port):
                box["port"] = port
                ready.set()

            thread = threading.Thread(
                target=serve_tcp, args=(eng, "127.0.0.1", 0),
                kwargs={"ready_callback": on_ready}, daemon=True)
            thread.start()
            assert ready.wait(10)
            sock = socket.create_connection(("127.0.0.1", box["port"]),
                                            timeout=60)
            try:
                stream = sock.makefile("rwb")
                stream.write((line + "\n").encode())
                stream.flush()
                tcp_env = json.loads(stream.readline())
            finally:
                sock.close()
        assert _normalize(stdio_env) == _normalize(tcp_env)
        assert set(stdio_env["telemetry"]) == TELEMETRY_KEYS
        assert stdio_env["telemetry"]["cache"] == {
            "session": "hit", "weights": "warm", "plan": "warm"}


class TestRunlogTelemetry:
    def test_schema_v2_carries_telemetry(self, engine, tmp_path):
        from repro.obs import runlog
        response = engine.submit({"op": "analyze", "circuit": "c17",
                                  "eps": [0.05], "options": OPTS})
        record = runlog.build_record("analyze",
                                     telemetry=response.telemetry)
        assert record.schema_version == 2
        path = tmp_path / "run.jsonl"
        runlog.append_record(path, record)
        loaded = runlog.read_runlog(path)[0]
        assert loaded["schema_version"] == 2
        assert set(loaded["telemetry"]) == TELEMETRY_KEYS

    def test_plain_records_have_null_telemetry(self, tmp_path):
        from repro.obs import runlog
        record = runlog.build_record("analyze")
        assert record.telemetry is None
        path = tmp_path / "run.jsonl"
        runlog.append_record(path, record)
        assert runlog.read_runlog(path)[0]["telemetry"] is None
