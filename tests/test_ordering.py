"""Tests for BDD variable-ordering heuristics."""

import pytest

from repro.bdd import (
    BddSizeLimitError,
    best_order,
    build_with_best_order,
    declaration_order,
    dfs_order,
    fanin_level_order,
    total_bdd_size,
)
from repro.circuits import mux_tree, ripple_carry_adder
from tests.conftest import all_assignments


class TestHeuristics:
    def test_all_orders_are_permutations(self, full_adder_circuit):
        inputs = set(full_adder_circuit.inputs)
        for heuristic in (declaration_order, dfs_order, fanin_level_order):
            order = heuristic(full_adder_circuit)
            assert set(order) == inputs
            assert len(order) == len(inputs)

    def test_dfs_interleaves_adder_buses(self):
        circuit = ripple_carry_adder(6)
        order = dfs_order(circuit)
        # a0 and b0 must be adjacent near the front (they feed bit 0).
        ia, ib = order.index("a0"), order.index("b0")
        assert abs(ia - ib) == 1

    def test_dfs_covers_dangling_inputs(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("dangle")
        c.add_input("used")
        c.add_input("unused")
        c.add_gate("y", GateType.NOT, ["used"])
        c.set_output("y")
        order = dfs_order(c)
        assert set(order) == {"used", "unused"}


class TestSizes:
    def test_dfs_shrinks_adder_bdds_dramatically(self):
        circuit = ripple_carry_adder(8)
        naive = total_bdd_size(circuit, declaration_order(circuit))
        smart = total_bdd_size(circuit, dfs_order(circuit))
        assert smart * 5 < naive  # 13x in practice; demand at least 5x

    def test_best_order_picks_the_smallest(self):
        circuit = ripple_carry_adder(6)
        order, name, size = best_order(circuit)
        for heuristic in ("declaration", "dfs", "fanin-level"):
            assert size <= total_bdd_size(
                circuit,
                __import__("repro.bdd.ordering",
                           fromlist=["HEURISTICS"]).HEURISTICS[heuristic](
                               circuit))

    def test_node_limit_skips_blown_heuristics(self):
        circuit = ripple_carry_adder(10)
        # The declaration order blows past a small limit; dfs fits.
        order, name, size = best_order(circuit, node_limit=5_000)
        assert name in ("dfs", "fanin-level")

    def test_all_heuristics_blown_raises(self):
        circuit = ripple_carry_adder(8)
        with pytest.raises(BddSizeLimitError):
            best_order(circuit, node_limit=16)


class TestBuildWithBestOrder:
    def test_functions_correct_under_reorder(self, full_adder_circuit):
        bdds = build_with_best_order(full_adder_circuit)
        for assignment in all_assignments(full_adder_circuit):
            vec = [0] * len(full_adder_circuit.inputs)
            for name, value in assignment.items():
                vec[bdds.var_index[name]] = value
            values = full_adder_circuit.evaluate(assignment)
            for out in full_adder_circuit.outputs:
                assert bdds[out].evaluate(vec) == values[out]

    def test_mux_tree_order(self):
        circuit = mux_tree(3)
        bdds = build_with_best_order(circuit)
        assert bdds.manager.num_nodes < total_bdd_size(
            circuit, declaration_order(circuit)) + 1
