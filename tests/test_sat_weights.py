"""Parity tests for the ``method="sat"`` weight tier.

Every catalog circuit gets one *test cone* — the widest output cone (or
failing that, internal gate cone) with at most 20 primary inputs, so an
exhaustive reference is cheap while the XOR-hash arm of the ladder
(17-24 inputs) is still exercised where the circuit offers such a cone.
Each node is then held to the bound of the tier its own support selects:

* support <= 16 (exact enumeration arm): equality to machine precision;
* 17..24 (XOR-hash arm): each weight entry and the signal probability
  within the documented ``1 + epsilon`` multiplicative factor;
* > 24 (sampled fallback): loose statistical tolerance.

All assertions are deterministic — the tier's per-node seeds derive from
the node name and one base seed.
"""

import numpy as np
import pytest

from repro.circuit.analysis import input_support
from repro.circuits import get_benchmark, list_benchmarks, parity_tree
from repro.probability.sat_weights import SatTierOptions, sat_weight_vectors
from repro.probability.weights import compute_weights, exhaustive_weight_vectors

EPSILON = 0.8
FACTOR = 1.0 + EPSILON


def pick_cone(circuit, max_support=20):
    """Widest cone under the cap, preferring primary outputs."""
    support = input_support(circuit)
    pools = ([o for o in circuit.outputs if o in support],
             list(circuit.topological_gates()))
    for pool in pools:
        best, best_m = None, -1
        for node in pool:
            m = len(support[node])
            if best_m < m <= max_support:
                best, best_m = node, m
        if best is not None:
            return circuit.cone(best)
    pytest.skip(f"{circuit.name}: no cone within {max_support} inputs")


def assert_tier_bounds(cone, sat, ref):
    support = input_support(cone)
    for gate in cone.topological_gates():
        m = len(support[gate])
        sat_vec = np.asarray(sat.weights[gate], dtype=float)
        ref_vec = np.asarray(ref.weights[gate], dtype=float)
        sat_p = float(sat.signal_prob[gate])
        ref_p = float(ref.signal_prob[gate])
        if m <= 16:
            np.testing.assert_allclose(sat_vec, ref_vec, atol=1e-12,
                                       err_msg=f"{cone.name}:{gate} exact")
            assert abs(sat_p - ref_p) < 1e-12
        elif m <= 24:
            # Counts within factor 1+eps each; the normalized vector and
            # the derived signal probability inherit at most the squared
            # factor, plus an absolute floor for near-zero entries.
            floor = FACTOR / (1 << m)
            for s, r in zip(sat_vec, ref_vec):
                lo = r / FACTOR ** 2 - floor
                hi = r * FACTOR ** 2 + floor
                assert lo <= s <= hi, (
                    f"{cone.name}:{gate} (m={m}) entry {s} outside "
                    f"[{lo}, {hi}] around {r}")
            assert abs(sat_p - ref_p) <= \
                ref_p * (FACTOR ** 2 - 1.0) + floor
        else:
            assert np.all(np.abs(sat_vec - ref_vec) < 0.05)
            assert abs(sat_p - ref_p) < 0.05


@pytest.mark.parametrize("name", sorted(list_benchmarks()))
def test_catalog_sat_weights_within_bounds(name):
    circuit = get_benchmark(name)
    cone = pick_cone(circuit)
    ref = exhaustive_weight_vectors(cone)
    sat = sat_weight_vectors(cone, seed=0)
    assert sat.source == "sat"
    assert set(sat.weights) == set(ref.weights)
    assert_tier_bounds(cone, sat, ref)


def test_xor_arm_on_parity_tree():
    """An 18-input parity tree forces the XOR-hash arm at the root."""
    circuit = parity_tree(18)
    support = input_support(circuit)
    root = circuit.outputs[0]
    assert len(support[root]) == 18  # really lands in the 17..24 band
    ref = exhaustive_weight_vectors(circuit)
    sat = sat_weight_vectors(circuit, seed=0)
    assert_tier_bounds(circuit, sat, ref)


def test_compute_weights_dispatches_sat():
    circuit = get_benchmark("c17")
    via_dispatch = compute_weights(circuit, method="sat", seed=0)
    direct = sat_weight_vectors(circuit, seed=0)
    assert via_dispatch.source == "sat"
    for gate in circuit.topological_gates():
        np.testing.assert_array_equal(via_dispatch.weights[gate],
                                      direct.weights[gate])


def test_sat_rejects_nonuniform_inputs():
    circuit = get_benchmark("c17")
    probs = {i: 0.3 for i in circuit.inputs}
    with pytest.raises(ValueError):
        sat_weight_vectors(circuit, input_probs=probs)
    with pytest.raises(ValueError):
        compute_weights(circuit, method="sat", input_probs=probs)


def test_budget_exhaustion_degrades_to_sampling():
    """A zero conflict budget must not hang or raise — it samples."""
    circuit = parity_tree(18)
    opts = SatTierOptions(max_conflicts=0)
    sat = sat_weight_vectors(circuit, seed=0, options=opts)
    ref = exhaustive_weight_vectors(circuit)
    root = circuit.outputs[0]
    assert abs(float(sat.signal_prob[root])
               - float(ref.signal_prob[root])) < 0.05


def test_deterministic_across_runs():
    circuit = parity_tree(18)
    a = sat_weight_vectors(circuit, seed=3)
    b = sat_weight_vectors(circuit, seed=3)
    for gate in circuit.topological_gates():
        np.testing.assert_array_equal(a.weights[gate], b.weights[gate])
