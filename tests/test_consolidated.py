"""Tests for consolidated multi-output error (paper Sec. 5.1, Figs. 5/8)."""

import numpy as np
import pytest

from repro.circuits import c17
from repro import sweep
from repro.reliability import (
    ConsolidatedAnalyzer,
    exhaustive_exact_reliability,
    output_joint_distributions,
)
from repro.sim import monte_carlo_reliability


class TestOutputJointDistributions:
    def test_sums_to_one(self, two_output_circuit):
        joint = output_joint_distributions(two_output_circuit)
        for dist in joint.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_matches_enumeration(self, two_output_circuit):
        joint = output_joint_distributions(two_output_circuit)
        dist = joint[("y1", "y2")]
        counts = np.zeros(4)
        for k in range(8):
            assignment = {"a": k & 1, "b": (k >> 1) & 1, "c": (k >> 2) & 1}
            out = two_output_circuit.evaluate_outputs(assignment)
            counts[out["y1"] + 2 * out["y2"]] += 1 / 8
        np.testing.assert_allclose(dist, counts, atol=1e-12)

    def test_sampled_close_to_exact(self, two_output_circuit):
        exact = output_joint_distributions(two_output_circuit)
        sampled = output_joint_distributions(two_output_circuit,
                                             n_patterns=1 << 15)
        np.testing.assert_allclose(sampled[("y1", "y2")],
                                   exact[("y1", "y2")], atol=0.02)

    def test_all_pairs_present(self):
        circuit = c17()
        joint = output_joint_distributions(circuit)
        assert len(joint) == 1  # c17 has 2 outputs -> one pair


class TestConsolidation:
    def test_two_outputs_vs_exact(self, two_output_circuit):
        analyzer = ConsolidatedAnalyzer(two_output_circuit)
        for eps in (0.05, 0.1, 0.2):
            exact = exhaustive_exact_reliability(two_output_circuit, eps)
            result = analyzer.run(eps)
            assert result.any_output == pytest.approx(exact.any_output,
                                                      abs=0.03)

    def test_c17_vs_exact(self):
        circuit = c17()
        analyzer = ConsolidatedAnalyzer(circuit)
        for eps in (0.05, 0.15):
            exact = exhaustive_exact_reliability(circuit, eps)
            result = analyzer.run(eps)
            assert result.any_output == pytest.approx(exact.any_output,
                                                      abs=0.03)

    def test_bounds(self, two_output_circuit):
        analyzer = ConsolidatedAnalyzer(two_output_circuit)
        result = analyzer.run(0.1)
        assert result.any_output >= max(result.per_output.values()) - 0.02
        assert result.any_output <= sum(result.per_output.values()) + 1e-9
        assert 0.0 <= result.any_output <= 1.0

    def test_correlated_outputs_below_independence(self):
        """With heavily shared logic, correlation-aware consolidation should
        be at most the independence estimate (errors co-occur)."""
        from repro.circuit import CircuitBuilder
        b = CircuitBuilder("share")
        a, c, d = b.inputs("a", "c", "d")
        stem = b.and_(a, c, name="stem")
        b.outputs(b.or_(stem, d, name="o1"), b.xor(stem, d, name="o2"))
        circuit = b.build()
        analyzer = ConsolidatedAnalyzer(circuit)
        result = analyzer.run(0.1)
        assert result.any_output <= result.any_output_independent + 1e-9

    def test_pairwise_joint_error_reported(self, two_output_circuit):
        analyzer = ConsolidatedAnalyzer(two_output_circuit)
        result = analyzer.run(0.1)
        assert ("y1", "y2") in result.pairwise_joint_error
        j = result.pairwise_joint_error[("y1", "y2")]
        assert 0.0 <= j <= min(result.per_output.values()) + 1e-9

    def test_curve_increases(self, two_output_circuit):
        curve = sweep(two_output_circuit, [0.0, 0.05, 0.15],
                      method="consolidated")
        assert curve[0.0] == pytest.approx(0.0)
        assert curve[0.05] < curve[0.15]

    def test_against_monte_carlo(self, two_output_circuit):
        analyzer = ConsolidatedAnalyzer(two_output_circuit)
        mc = monte_carlo_reliability(two_output_circuit, 0.1,
                                     n_patterns=1 << 16, seed=9)
        result = analyzer.run(0.1)
        assert result.any_output == pytest.approx(mc.any_output, abs=0.03)
