"""Tests for the BDD-exact engine, reliability polynomial, and
noisy-observability measurement."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, fig2_circuit, parity_tree
from repro.reliability import (
    bdd_exact_reliability,
    evaluate_polynomial,
    exhaustive_exact_reliability,
    reliability_polynomial,
)
from repro.sim import monte_carlo_observabilities, noisy_observabilities


class TestBddExact:
    @pytest.mark.parametrize("eps", [0.0, 0.02, 0.1, 0.3, 0.5])
    def test_matches_exhaustive(self, reconvergent_circuit, eps):
        a = bdd_exact_reliability(reconvergent_circuit, eps)
        b = exhaustive_exact_reliability(reconvergent_circuit, eps).delta()
        assert a == pytest.approx(b, abs=1e-12)

    def test_per_gate_eps(self, reconvergent_circuit):
        eps = {g: 0.02 * (i + 1) for i, g in enumerate(
            reconvergent_circuit.topological_gates())}
        a = bdd_exact_reliability(reconvergent_circuit, eps)
        b = exhaustive_exact_reliability(reconvergent_circuit, eps).delta()
        assert a == pytest.approx(b, abs=1e-12)

    def test_deep_chain_beyond_enumeration(self):
        """60 gates: 2**60 subsets is hopeless; the fault-variable BDD is
        linear, and the tree-exact closed form pins the answer."""
        b = CircuitBuilder("chain")
        x, y = b.inputs("x", "y")
        acc = b.and_(x, y)
        for _ in range(59):
            acc = b.not_(acc)
        b.outputs(acc)
        circuit = b.build()
        eps = 0.01
        got = bdd_exact_reliability(circuit, eps)
        expected = 0.5 * (1 - (1 - 2 * eps) ** 60)
        assert got == pytest.approx(expected, abs=1e-12)

    def test_multi_output_needs_name(self, full_adder_circuit):
        with pytest.raises(ValueError):
            bdd_exact_reliability(full_adder_circuit, 0.1)
        value = bdd_exact_reliability(full_adder_circuit, 0.1, output="s")
        exact = exhaustive_exact_reliability(full_adder_circuit, 0.1)
        assert value == pytest.approx(exact.per_output["s"], abs=1e-12)

    def test_parity_tree_formula(self):
        circuit = parity_tree(8)
        eps = 0.07
        got = bdd_exact_reliability(circuit, eps)
        n = circuit.num_gates
        assert got == pytest.approx(0.5 * (1 - (1 - 2 * eps) ** n))

    def test_eps_validation(self, reconvergent_circuit):
        with pytest.raises(ValueError):
            bdd_exact_reliability(reconvergent_circuit, 0.7)


class TestReliabilityPolynomial:
    def test_matches_exhaustive_everywhere(self):
        circuit = fig2_circuit()
        poly = reliability_polynomial(circuit)
        for eps in (0.01, 0.1, 0.25, 0.4):
            value = evaluate_polynomial(poly, circuit.num_gates, eps)
            exact = exhaustive_exact_reliability(circuit, eps).any_output
            assert value == pytest.approx(exact, abs=1e-10)

    def test_endpoints(self):
        circuit = fig2_circuit()
        poly = reliability_polynomial(circuit)
        assert poly[0] == 0.0  # no failures, no error
        assert 0.0 < poly[1] <= 1.0
        assert evaluate_polynomial(poly, circuit.num_gates, 0.0) == 0.0

    def test_stratum_one_is_mean_observability(self):
        circuit = fig2_circuit()
        poly = reliability_polynomial(circuit)
        from repro.reliability import MultiOutputObservabilityModel
        multi = MultiOutputObservabilityModel(circuit)
        mean_any = (sum(multi.any_output_observabilities.values())
                    / circuit.num_gates)
        assert poly[1] == pytest.approx(mean_any, abs=1e-12)

    def test_guard_rails(self):
        from repro.circuits import random_circuit
        big = random_circuit(4, 25, 2, seed=0)
        with pytest.raises(ValueError):
            reliability_polynomial(big, max_gates=20)


class TestNoisyObservabilities:
    def test_matches_noiseless_at_zero_eps(self, reconvergent_circuit):
        noiseless = monte_carlo_observabilities(
            reconvergent_circuit, n_patterns=1 << 13, seed=2)
        at_zero = noisy_observabilities(
            reconvergent_circuit, 0.0, n_patterns=1 << 13, seed=2)
        for gate, o in noiseless.items():
            assert at_zero[gate] == pytest.approx(o, abs=0.03)

    def test_noise_distorts_observability(self):
        """Sec. 3.1(ii): sensitized paths are perturbed by other failures;
        deep gates' effective observability shrinks toward 1/2-mixing."""
        circuit = fig2_circuit()
        noiseless = monte_carlo_observabilities(circuit,
                                                n_patterns=1 << 14, seed=1)
        noisy = noisy_observabilities(circuit, 0.15,
                                      n_patterns=1 << 14, seed=1)
        # The first-level gate n1 is several levels from the output: its
        # flip must now survive noisy downstream gates.
        assert noisy["n1"] < noiseless["n1"] - 0.05

    def test_output_gate_stays_fully_observable(self):
        circuit = fig2_circuit()
        noisy = noisy_observabilities(circuit, 0.2, n_patterns=1 << 12)
        # A flip at the output gate itself always reaches the output.
        assert noisy["n6"] == pytest.approx(1.0)

    def test_multi_output_needs_name(self, full_adder_circuit):
        with pytest.raises(ValueError):
            noisy_observabilities(full_adder_circuit, 0.1)


class TestInputProbPlumbing:
    def test_single_pass_with_biased_inputs(self):
        from repro.reliability import SinglePassAnalyzer
        b = CircuitBuilder("biased")
        x, y = b.inputs("x", "y")
        b.outputs(b.and_(x, y, name="z"))
        circuit = b.build()
        # With x always 1, delta = P(z=0)*p01 + P(z=1)*p10; signal prob of
        # z is P(y)=0.5; a single gate at eps: delta = eps regardless, but
        # signal_prob must reflect the bias.
        analyzer = SinglePassAnalyzer(circuit, input_probs={"x": 1.0},
                                      weight_method="bdd")
        assert analyzer.weights.signal_prob["z"] == pytest.approx(0.5)
        result = analyzer.run(0.1)
        assert result.delta() == pytest.approx(0.1)

    def test_exhaustive_rejects_bias(self):
        from repro.probability import compute_weights
        circuit = fig2_circuit()
        with pytest.raises(ValueError):
            compute_weights(circuit, method="exhaustive",
                            input_probs={"a": 0.9})
