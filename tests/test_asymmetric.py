"""Tests for the asymmetric gate-noise extension.

The paper's model is the symmetric BSC; the natural generalization lets a
gate's computed output flip 0→1 and 1→0 with different probabilities
(real SEU mechanisms are value-dependent).  The single pass, the frontier
oracle, and Monte Carlo all support it; the symmetric case must reduce
exactly to the original algorithms.
"""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import fig2_circuit, parity_tree
from repro.reliability import SinglePassAnalyzer, frontier_exact_reliability
from repro.sim import monte_carlo_asymmetric_reliability


class TestSymmetricReduction:
    def test_single_pass_equivalence(self):
        circuit = fig2_circuit()
        analyzer = SinglePassAnalyzer(circuit)
        assert analyzer.run(0.07).delta() == pytest.approx(
            analyzer.run(0.07, eps10=0.07).delta(), abs=1e-15)

    def test_frontier_equivalence(self, reconvergent_circuit):
        a = frontier_exact_reliability(reconvergent_circuit, 0.1).delta()
        b = frontier_exact_reliability(reconvergent_circuit, 0.1,
                                       eps10=0.1).delta()
        assert a == pytest.approx(b, abs=1e-15)

    def test_mc_matches_symmetric_mc(self, reconvergent_circuit):
        from repro.sim import monte_carlo_reliability
        sym = monte_carlo_reliability(reconvergent_circuit, 0.1,
                                      n_patterns=1 << 16, seed=4)
        asym = monte_carlo_asymmetric_reliability(
            reconvergent_circuit, 0.1, 0.1, n_patterns=1 << 16, seed=4)
        assert asym.delta() == pytest.approx(sym.delta(), abs=0.01)


class TestAsymmetric:
    def test_exact_on_trees(self):
        b = CircuitBuilder("t")
        x = b.inputs(*"abcd")
        top = b.nor(b.and_(x[0], x[1]), b.or_(x[2], x[3]))
        b.outputs(top)
        circuit = b.build()
        sp = SinglePassAnalyzer(circuit).run(0.1, eps10=0.03).delta()
        exact = frontier_exact_reliability(circuit, 0.1,
                                           eps10=0.03).delta()
        assert sp == pytest.approx(exact, abs=1e-12)

    def test_against_monte_carlo(self):
        circuit = fig2_circuit()
        sp = SinglePassAnalyzer(circuit).run(0.08, eps10=0.02).delta()
        mc = monte_carlo_asymmetric_reliability(circuit, 0.08, 0.02,
                                                n_patterns=1 << 17,
                                                seed=3)
        assert sp == pytest.approx(mc.delta(), abs=0.01)

    def test_one_sided_noise_on_inverter_chain(self):
        # Single buffer, only 0->1 noise: output errs iff value is 0 and
        # the flip fires: delta = P(0) * e01.
        b = CircuitBuilder("wire")
        a = b.input("a")
        b.outputs(b.buf(a, name="y"))
        circuit = b.build()
        sp = SinglePassAnalyzer(circuit).run(0.2, eps10=0.0)
        assert sp.delta() == pytest.approx(0.5 * 0.2)
        assert sp.node_errors["y"].p01 == pytest.approx(0.2)
        assert sp.node_errors["y"].p10 == pytest.approx(0.0)

    def test_direction_matters_on_skewed_signals(self):
        # AND of four inputs: output is 1 only 1/16 of the time, so 0->1
        # noise dominates the error probability.
        b = CircuitBuilder("skew")
        xs = b.input_bus("x", 4)
        acc = xs[0]
        for x in xs[1:]:
            acc = b.and_(acc, x)
        b.outputs(acc)
        circuit = b.build()
        analyzer = SinglePassAnalyzer(circuit)
        up_noise = analyzer.run(0.1, eps10=0.0).delta()
        down_noise = analyzer.run(0.0, eps10=0.1).delta()
        assert up_noise > down_noise
        # Both exact (tree):
        for e01, e10 in ((0.1, 0.0), (0.0, 0.1), (0.07, 0.21)):
            sp = analyzer.run(e01, eps10=e10).delta()
            exact = frontier_exact_reliability(circuit, e01,
                                               eps10=e10).delta()
            assert sp == pytest.approx(exact, abs=1e-12)

    def test_eps10_validated(self):
        circuit = parity_tree(4)
        analyzer = SinglePassAnalyzer(circuit)
        with pytest.raises(ValueError):
            analyzer.run(0.1, eps10=0.9)
        with pytest.raises(ValueError):
            monte_carlo_asymmetric_reliability(circuit, 0.1, 0.9,
                                               n_patterns=64)

    def test_per_gate_asymmetric_specs(self):
        circuit = fig2_circuit()
        gates = circuit.topological_gates()
        e01 = {g: 0.02 * (i + 1) for i, g in enumerate(gates)}
        e10 = {g: 0.01 for g in gates}
        sp = SinglePassAnalyzer(circuit).run(e01, eps10=e10).delta()
        exact = frontier_exact_reliability(circuit, e01,
                                           eps10=e10).delta()
        assert sp == pytest.approx(exact, abs=0.02)
