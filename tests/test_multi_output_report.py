"""Tests for the multi-output closed form and the report generator."""

import pytest

from repro.circuits import c17, get_benchmark
from repro.report import ReportConfig, reliability_report
from repro.reliability import MultiOutputObservabilityModel
from repro.sim import monte_carlo_reliability


class TestMultiOutputModel:
    def test_per_output_matches_single_output_models(self):
        circuit = c17()
        multi = MultiOutputObservabilityModel(circuit)
        from repro.reliability import ObservabilityModel
        for out in circuit.outputs:
            single = ObservabilityModel(circuit, output=out)
            assert multi.delta(0.05)[out] == pytest.approx(
                single.delta(0.05))

    def test_any_output_observability_dominates_per_output(self):
        circuit = c17()
        multi = MultiOutputObservabilityModel(circuit)
        for out, model in multi.per_output_models.items():
            for gate, o in model.observabilities.items():
                assert (multi.any_output_observabilities[gate]
                        >= o - 1e-12), (out, gate)

    def test_any_output_delta_first_order(self):
        circuit = c17()
        multi = MultiOutputObservabilityModel(circuit)
        eps = 1e-5
        mc_like = sum(multi.any_output_observabilities.values()) * eps
        assert multi.any_output_delta(eps) == pytest.approx(mc_like,
                                                            rel=1e-3)

    def test_tracks_mc_at_small_eps(self):
        circuit = c17()
        multi = MultiOutputObservabilityModel(circuit)
        eps = 0.02
        mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                     seed=1)
        assert multi.any_output_delta(eps) == pytest.approx(mc.any_output,
                                                            abs=0.02)

    def test_sampled_mode(self):
        circuit = get_benchmark("x2")
        multi = MultiOutputObservabilityModel(circuit, method="sampled",
                                              n_patterns=1 << 13)
        deltas = multi.delta(0.01)
        assert set(deltas) == set(circuit.outputs)
        assert all(0 <= v <= 0.5 for v in deltas.values())


class TestReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        config = ReportConfig(eps_values=(0.01, 0.05), mc_patterns=1 << 12,
                              testability_patterns=1 << 10)
        return reliability_report(c17(), config)

    def test_sections_present(self, report_text):
        for heading in ("# Reliability report — c17", "## Structure",
                        "## Output error probability",
                        "## Critical gates", "## Error asymmetry",
                        "## Random-pattern testability"):
            assert heading in report_text

    def test_structure_row(self, report_text):
        assert "| 5 | 2 | 6 | 3 |" in report_text

    def test_delta_rows(self, report_text):
        assert report_text.count("| 0.0") >= 2  # one row per eps value

    def test_testability_optional(self):
        config = ReportConfig(eps_values=(0.05,), mc_patterns=1 << 10,
                              include_testability=False)
        text = reliability_report(c17(), config)
        assert "Random-pattern testability" not in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "r.md"
        assert main(["report", "c17", "--patterns", "1024",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("# Reliability report")
