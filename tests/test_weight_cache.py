"""Persistent weight-vector cache: keying, round-trips, corruption."""

import json
import os

import numpy as np
import pytest

from repro.circuit import Circuit, GateType
from repro.circuits import c17, get_benchmark
from repro.cli import main
from repro.probability.weight_cache import (
    cache_key,
    load_weights,
    store_weights,
    structural_hash,
)
from repro.probability.weights import compute_weights


def _entries(cache_dir):
    return sorted(p for p in os.listdir(cache_dir) if p.endswith(".npz"))


def _assert_same_weights(a, b):
    assert a.source == b.source
    assert a.weights.keys() == b.weights.keys()
    for gate in a.weights:
        assert np.array_equal(a.weights[gate], b.weights[gate])
    assert a.signal_prob.keys() == b.signal_prob.keys()
    for node in a.signal_prob:
        assert a.signal_prob[node] == b.signal_prob[node]


class TestStructuralHash:
    def test_name_independent(self):
        a = c17()
        b = c17()
        b.name = "same-netlist-different-label"
        assert structural_hash(a) == structural_hash(b)

    def test_gate_rename_changes_hash(self):
        def build(mid_name):
            c = Circuit(name="t")
            for pi in ("a", "b"):
                c.add_input(pi)
            c.add_gate(mid_name, GateType.NAND, ["a", "b"])
            c.add_gate("y", GateType.NOT, [mid_name])
            c.set_output("y")
            return c

        assert structural_hash(build("m")) != structural_hash(build("m2"))

    def test_structure_change_changes_hash(self):
        def build(gtype):
            c = Circuit(name="t")
            for pi in ("a", "b"):
                c.add_input(pi)
            c.add_gate("y", gtype, ["a", "b"])
            c.set_output("y")
            return c

        assert structural_hash(build(GateType.NAND)) != \
            structural_hash(build(GateType.NOR))


class TestCacheKey:
    def test_parameters_partition_the_keyspace(self):
        circuit = c17()
        base = dict(method="sampled", n_patterns=1 << 8, seed=0)
        key = cache_key(circuit, **base)
        assert cache_key(circuit, **base) == key
        variants = [
            dict(base, method="exhaustive"),
            dict(base, n_patterns=1 << 9),
            dict(base, seed=1),
            dict(base, input_probs={circuit.inputs[0]: 0.3}),
        ]
        keys = {cache_key(circuit, **v) for v in variants}
        assert key not in keys
        assert len(keys) == len(variants)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        circuit = get_benchmark("fig1a")
        cache = str(tmp_path / "wcache")
        cold = compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                               seed=3, cache_dir=cache)
        assert len(_entries(cache)) == 1
        warm = compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                               seed=3, cache_dir=cache)
        assert len(_entries(cache)) == 1
        _assert_same_weights(cold, warm)

    def test_load_store_api(self, tmp_path):
        circuit = c17()
        data = compute_weights(circuit, method="exhaustive")
        cache = str(tmp_path / "wcache")
        assert load_weights(cache if os.path.isdir(cache) else str(tmp_path),
                            circuit, "exhaustive", 1 << 12, 0) is None
        store_weights(cache, circuit, "exhaustive", 1 << 12, 0, None, data)
        back = load_weights(cache, circuit, "exhaustive", 1 << 12, 0)
        assert back is not None
        _assert_same_weights(data, back)

    def test_different_seed_creates_new_entry(self, tmp_path):
        circuit = c17()
        cache = str(tmp_path / "wcache")
        compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                        seed=0, cache_dir=cache)
        compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                        seed=1, cache_dir=cache)
        assert len(_entries(cache)) == 2

    def test_non_uniform_input_probs_round_trip(self, tmp_path):
        circuit = c17()
        probs = {circuit.inputs[0]: 0.25, circuit.inputs[2]: 0.9}
        cache = str(tmp_path / "wcache")
        cold = compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                               seed=0, input_probs=probs, cache_dir=cache)
        warm = compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                               seed=0, input_probs=probs, cache_dir=cache)
        _assert_same_weights(cold, warm)


class TestCorruptionRecovery:
    def _populate(self, tmp_path):
        circuit = c17()
        cache = str(tmp_path / "wcache")
        data = compute_weights(circuit, method="sampled", n_patterns=1 << 8,
                               seed=0, cache_dir=cache)
        (entry,) = _entries(cache)
        return circuit, cache, data, os.path.join(cache, entry)

    def test_truncated_entry_recomputed(self, tmp_path):
        circuit, cache, data, path = self._populate(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(16)
        again = compute_weights(circuit, method="sampled",
                                n_patterns=1 << 8, seed=0, cache_dir=cache)
        _assert_same_weights(data, again)
        # The rewrite healed the entry: next read is a real hit.
        assert load_weights(cache, circuit, "sampled", 1 << 8, 0) is not None

    def test_garbage_entry_recomputed(self, tmp_path):
        circuit, cache, data, path = self._populate(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"this is not an npz archive")
        again = compute_weights(circuit, method="sampled",
                                n_patterns=1 << 8, seed=0, cache_dir=cache)
        _assert_same_weights(data, again)

    def test_stale_entry_for_edited_netlist_is_a_miss(self, tmp_path):
        """Same key file, different structure inside => manifest mismatch."""
        circuit, cache, _, path = self._populate(tmp_path)
        other = get_benchmark("fig1a")
        key_other = cache_key(other, "sampled", 1 << 8, 0)
        store_weights(cache, other, "sampled", 1 << 8, 0, None,
                      compute_weights(other, method="sampled",
                                      n_patterns=1 << 8, seed=0))
        # Graft the other circuit's entry over c17's key: detected stale.
        grafted = os.path.join(cache, f"weights-{key_other}.npz")
        os.replace(grafted, path)
        assert load_weights(cache, circuit, "sampled", 1 << 8, 0) is None


class TestCliIntegration:
    def test_analyze_weights_cache(self, tmp_path, capsys):
        cache = tmp_path / "wcache"
        args = ["analyze", "c17", "--eps", "0.05", "--weights", "sampled",
                "--json", "--weights-cache", str(cache)]
        def run():
            assert main(args) == 0
            data = json.loads(capsys.readouterr().out)
            data.pop("elapsed_s", None)
            return data

        first = run()
        # One weight entry plus the compiled correlated kernel's pair-table
        # entry (analyze dispatches correlated-compiled by default).
        entries = _entries(str(cache))
        assert len(entries) == 2
        assert any(e.startswith("weights-") for e in entries)
        assert any(e.startswith("corrplan-") for e in entries)
        assert run() == first
        assert len(_entries(str(cache))) == 2

    def test_curve_weights_cache(self, tmp_path, capsys):
        cache = tmp_path / "wcache"
        args = ["curve", "fig1a", "--points", "3", "--max-eps", "0.1",
                "--patterns", "256", "--weights-cache", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert len(_entries(str(cache))) >= 1
        n_entries = len(_entries(str(cache)))
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert len(_entries(str(cache))) == n_entries

    def test_report_weights_cache(self, tmp_path, capsys):
        cache = tmp_path / "wcache"
        assert main(["report", "fig1a", "--patterns", "256",
                     "--no-testability",
                     "--weights-cache", str(cache)]) == 0
        capsys.readouterr()
        assert len(_entries(str(cache))) >= 1
