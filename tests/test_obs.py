"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
import threading

import pytest

from repro import obs
from repro.circuits import c17
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger, verbosity_to_level


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTraceSpans:
    def test_disabled_by_default_records_nothing(self):
        with obs.trace_span("x"):
            pass
        assert obs.get_tracer().spans == []

    def test_disabled_returns_shared_noop(self):
        a = obs.trace_span("a")
        b = obs.trace_span("b", k=1)
        assert a is b  # no allocation on the disabled path
        a.set(extra=1)  # and attrs are silently dropped

    def test_span_records_name_and_duration(self):
        obs.enable()
        with obs.trace_span("phase_one"):
            pass
        spans = obs.get_tracer().spans
        assert len(spans) == 1
        assert spans[0].name == "phase_one"
        assert spans[0].duration >= 0.0
        assert spans[0].depth == 0
        assert spans[0].parent is None

    def test_nesting_depth_and_parent(self):
        obs.enable()
        with obs.trace_span("outer"):
            with obs.trace_span("middle"):
                with obs.trace_span("inner"):
                    pass
        by_name = {s.name: s for s in obs.get_tracer().spans}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"

    def test_inner_duration_within_outer(self):
        obs.enable()
        with obs.trace_span("outer"):
            with obs.trace_span("inner"):
                x = sum(range(1000))
        assert x == 499500
        by_name = {s.name: s for s in obs.get_tracer().spans}
        assert by_name["inner"].duration <= by_name["outer"].duration

    def test_attrs_and_set(self):
        obs.enable()
        with obs.trace_span("s", circuit="c17") as span:
            span.set(gates=6)
        (span,) = obs.get_tracer().spans
        assert span.attrs == {"circuit": "c17", "gates": 6}

    def test_span_recorded_on_exception(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.trace_span("failing"):
                raise ValueError("boom")
        assert [s.name for s in obs.get_tracer().spans] == ["failing"]
        # The stack unwound: the next span is top-level again.
        with obs.trace_span("after"):
            pass
        assert {s.depth for s in obs.get_tracer().spans} == {0}

    def test_reset_clears_spans(self):
        obs.enable()
        with obs.trace_span("x"):
            pass
        obs.reset()
        assert obs.get_tracer().spans == []

    def test_find_and_total(self):
        obs.enable()
        for _ in range(3):
            with obs.trace_span("repeated"):
                pass
        tracer = obs.get_tracer()
        assert len(tracer.find("repeated")) == 3
        assert tracer.total("repeated") == pytest.approx(
            sum(s.duration for s in tracer.find("repeated")))

    def test_phase_timings_sums_by_name(self):
        obs.enable()
        with obs.trace_span("a"):
            pass
        with obs.trace_span("a"):
            pass
        with obs.trace_span("b"):
            pass
        timings = obs.get_tracer().phase_timings()
        assert set(timings) == {"a", "b"}
        assert timings["a"] >= 0.0

    def test_threads_have_independent_stacks(self):
        obs.enable()
        done = threading.Event()

        def worker():
            with obs.trace_span("worker_span"):
                done.wait(1.0)

        with obs.trace_span("main_span"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        by_name = {s.name: s for s in obs.get_tracer().spans}
        # The worker's span is NOT nested under the main thread's span.
        assert by_name["worker_span"].depth == 0
        assert by_name["worker_span"].parent is None
        assert (by_name["worker_span"].thread_id
                != by_name["main_span"].thread_id)

    def test_chrome_trace_export(self, tmp_path):
        obs.enable()
        with obs.trace_span("outer", circuit="c17"):
            with obs.trace_span("inner"):
                pass
        doc = obs.get_tracer().to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0.0
        assert events[0]["args"] == {"circuit": "c17"}
        # Round-trip through the file writer.
        path = tmp_path / "trace.json"
        obs.get_tracer().write_chrome_trace(path)
        assert json.loads(path.read_text()) == doc

    def test_as_table_indents_by_depth(self):
        obs.enable()
        with obs.trace_span("outer"):
            with obs.trace_span("inner"):
                pass
        table = obs.get_tracer().as_table()
        assert "outer" in table and "  inner" in table


class TestMetrics:
    def test_disabled_convenience_functions_are_noops(self):
        obs_metrics.inc("c")
        obs_metrics.set_gauge("g", 1.5)
        obs_metrics.observe("h", 0.1)
        assert obs_metrics.snapshot() == []

    def test_counter_semantics(self):
        obs.enable()
        obs_metrics.inc("gates_processed")
        obs_metrics.inc("gates_processed", 5)
        assert obs_metrics.get_registry().value("gates_processed") == 6
        with pytest.raises(ValueError):
            obs_metrics.counter("gates_processed").inc(-1)

    def test_labeled_series_are_distinct(self):
        obs.enable()
        obs_metrics.inc("mc.samples", 100, circuit="c17")
        obs_metrics.inc("mc.samples", 200, circuit="b9")
        reg = obs_metrics.get_registry()
        assert reg.value("mc.samples", circuit="c17") == 100
        assert reg.value("mc.samples", circuit="b9") == 200

    def test_gauge_semantics(self):
        obs.enable()
        obs_metrics.set_gauge("mc.rel_stderr", 0.5)
        obs_metrics.set_gauge("mc.rel_stderr", 0.25)  # last write wins
        assert obs_metrics.get_registry().value("mc.rel_stderr") == 0.25
        g = obs_metrics.gauge("adjustable")
        g.add(2)
        g.add(-0.5)
        assert g.value == 1.5

    def test_histogram_semantics(self):
        obs.enable()
        h = obs_metrics.histogram("latency")
        for v in (0.5e-6, 5e-4, 5e-4, 2.0, 5000.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(0.5e-6 + 1e-3 + 2.0 + 5000.0)
        assert h.min == 0.5e-6 and h.max == 5000.0
        assert h.mean() == pytest.approx(h.sum / 5)
        d = h.to_dict()
        # Cumulative bucket counts are monotone and end at <= count.
        counts = [b["count"] for b in d["buckets"]]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # the 5000.0 observation overflows

    def test_type_conflict_rejected(self):
        obs.enable()
        obs_metrics.counter("x").inc()
        with pytest.raises(TypeError):
            obs_metrics.gauge("x")

    def test_snapshot_shape_and_reset(self):
        obs.enable()
        obs_metrics.inc("a", 3, circuit="c17")
        obs_metrics.set_gauge("b", 7.0)
        obs_metrics.observe("c", 0.01)
        snap = obs_metrics.snapshot()
        assert [s["name"] for s in snap] == ["a", "b", "c"]
        assert snap[0] == {"type": "counter", "name": "a",
                           "labels": {"circuit": "c17"}, "value": 3}
        assert snap[1]["type"] == "gauge" and snap[1]["value"] == 7.0
        assert snap[2]["type"] == "histogram" and snap[2]["count"] == 1
        json.dumps(snap)  # snapshot must be JSON-serializable
        obs_metrics.reset()
        assert obs_metrics.snapshot() == []

    def test_disabled_after_enable_stops_collection(self):
        obs.enable()
        obs_metrics.inc("x")
        obs.disable()
        obs_metrics.inc("x")
        assert obs_metrics.get_registry().value("x") == 1


class TestHistogramQuantile:
    def _hist(self, values):
        obs.enable()
        h = obs_metrics.histogram("q")
        for v in values:
            h.observe(v)
        return h

    def test_uniform_deciles(self):
        # 1..10 ms: known distribution, interpolated quantiles.
        h = self._hist([i / 1e3 for i in range(1, 11)])
        assert h.quantile(0.0) == pytest.approx(1e-3)
        assert h.quantile(0.5) == pytest.approx(5e-3, rel=0.05)
        assert h.quantile(1.0) == pytest.approx(1e-2)
        assert h.quantile(0.5) <= h.quantile(0.9) <= h.quantile(0.99)

    def test_single_value_is_exact_everywhere(self):
        h = self._hist([0.007])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.007)

    def test_empty_histogram_returns_zero(self):
        h = self._hist([])
        assert h.quantile(0.5) == 0.0

    def test_overflow_bucket_returns_max(self):
        # Values beyond the last bound land in the overflow bucket.
        h = self._hist([5000.0, 6000.0, 7000.0])
        assert h.quantile(0.99) == pytest.approx(7000.0)

    def test_out_of_range_rejected(self):
        h = self._hist([1.0])
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_quantiles_bounded_by_min_max(self):
        h = self._hist([0.002, 0.004, 0.008, 0.3])
        for q in (0.1, 0.5, 0.9, 0.99):
            assert h.min <= h.quantile(q) <= h.max


class TestRegistryMerge:
    def test_counter_and_gauge_merge(self):
        obs.enable()
        remote = obs_metrics.MetricsRegistry()
        remote.counter("n", circuit="c17").inc(4)
        remote.gauge("g").set(2.5)
        obs_metrics.inc("n", 3, circuit="c17")
        merged = obs_metrics.get_registry().merge(remote.snapshot())
        assert merged == 2
        reg = obs_metrics.get_registry()
        assert reg.value("n", circuit="c17") == 7
        assert reg.value("g") == 2.5

    def test_histogram_merge_preserves_distribution(self):
        obs.enable()
        remote = obs_metrics.MetricsRegistry()
        for v in (1e-3, 5e-3, 2.0):
            remote.histogram("h").observe(v)
        obs_metrics.observe("h", 1e-4)
        obs_metrics.get_registry().merge(remote.snapshot())
        h = obs_metrics.get_registry().histogram("h")
        assert h.count == 4
        assert h.sum == pytest.approx(1e-4 + 1e-3 + 5e-3 + 2.0)
        assert h.min == 1e-4 and h.max == 2.0

    def test_unknown_type_rejected(self):
        obs.enable()
        with pytest.raises(ValueError):
            obs_metrics.get_registry().merge(
                [{"type": "exotic", "name": "x", "labels": {}}])

    def test_merge_into_empty_registry(self):
        obs.enable()
        remote = obs_metrics.MetricsRegistry()
        remote.counter("only.remote").inc(2)
        obs_metrics.get_registry().merge(remote.snapshot())
        assert obs_metrics.get_registry().value("only.remote") == 2


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        obs.enable()
        obs_metrics.inc("engine.requests", 3, op="analyze")
        obs_metrics.set_gauge("engine.lanes", 2)
        text = obs_metrics.to_prometheus()
        assert "# TYPE repro_engine_requests_total counter" in text
        assert 'repro_engine_requests_total{op="analyze"} 3' in text
        assert "# TYPE repro_engine_lanes gauge" in text
        assert "repro_engine_lanes 2" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        obs.enable()
        for v in (5e-4, 5e-4, 2.0, 5000.0):
            obs_metrics.observe("latency", v)
        text = obs_metrics.to_prometheus()
        assert "# TYPE repro_latency histogram" in text
        assert 'repro_latency_bucket{le="0.001"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 4' in text
        assert "repro_latency_count 4" in text

    def test_label_escaping_and_name_sanitizing(self):
        obs.enable()
        obs_metrics.inc("odd-name.metric", 1, path='a"b\\c')
        text = obs_metrics.to_prometheus()
        assert 'repro_odd_name_metric_total{path="a\\"b\\\\c"} 1' in text

    def test_empty_registry_exports_empty(self):
        assert obs_metrics.to_prometheus() == ""


class TestEngineInstrumentation:
    def test_single_pass_spans_and_counters(self):
        from repro.reliability import SinglePassAnalyzer
        obs.enable()
        analyzer = SinglePassAnalyzer(c17())
        analyzer.run(0.05)  # default path: compiled correlated kernel
        SinglePassAnalyzer(c17(), compiled="off").run(0.05)  # scalar oracle
        tracer = obs.get_tracer()
        names = {s.name for s in tracer.spans}
        assert {"single_pass.weights", "single_pass.run",
                "compiled_pass.compile_correlated",
                "compiled_pass.run_sweep_correlated",
                "single_pass.topological_pass",
                "single_pass.per_output_delta"} <= names
        reg = obs_metrics.get_registry()
        assert reg.value("single_pass.gates_processed",
                         circuit="c17") == 12  # 6 compiled + 6 scalar
        assert reg.value("correlation.pairs_tracked", circuit="c17") > 0

    def test_disabled_single_pass_identical_result(self):
        from repro.reliability import SinglePassAnalyzer
        analyzer = SinglePassAnalyzer(c17())
        baseline = analyzer.run(0.05)
        obs.enable()
        instrumented = analyzer.run(0.05)
        obs.disable()
        assert instrumented.per_output == baseline.per_output
        assert obs_metrics.snapshot()  # metrics were collected
        assert obs.get_tracer().spans   # spans were collected

    def test_monte_carlo_metrics(self):
        from repro.sim import monte_carlo_reliability
        obs.enable()
        monte_carlo_reliability(c17(), 0.1, n_patterns=4096)
        reg = obs_metrics.get_registry()
        assert reg.value("mc.samples", circuit="c17") == 4096
        assert reg.value("mc.batches", circuit="c17") == 1
        rel = reg.value("mc.rel_stderr", circuit="c17")
        assert 0.0 < rel < 1.0
        assert obs.get_tracer().find("mc.run")

    def test_sat_call_counters(self):
        from repro.sat import Cnf, solve_cnf
        obs.enable()
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([-a, b])
        assert solve_cnf(cnf) is not None
        assert obs_metrics.get_registry().value("sat.calls") == 1

    def test_bdd_manager_stats_and_publish(self):
        from repro.bdd import BddManager
        mgr = BddManager()
        x, y = mgr.new_var("x"), mgr.new_var("y")
        _ = x & y
        stats = mgr.stats()
        assert stats["num_vars"] == 2
        assert stats["nodes_allocated"] >= 4  # 2 terminals + x, y at least
        mgr.publish_metrics(circuit="tiny")  # disabled: no-op
        assert obs_metrics.snapshot() == []
        obs.enable()
        mgr.publish_metrics(circuit="tiny")
        assert obs_metrics.get_registry().value(
            "bdd.nodes_allocated", circuit="tiny") == stats["nodes_allocated"]

    def test_correlation_tallies(self):
        from repro.reliability import SinglePassAnalyzer
        # Per-query drop tallies are a scalar-engine behavior (the compiled
        # plan resolves gapped pairs to the constant row at compile time).
        analyzer = SinglePassAnalyzer(c17(), max_correlation_level_gap=0,
                                      compiled="off")
        result = analyzer.run(0.05)
        engine = result.correlation_engine
        assert engine.pairs_dropped_level_gap > 0

    def test_rare_event_metrics(self):
        from repro.sim import StratifiedEstimator
        obs.enable()
        est = StratifiedEstimator(c17(), max_failures=2, n_patterns=256,
                                  samples_per_stratum=5)
        est.evaluate(1e-6)
        reg = obs_metrics.get_registry()
        assert reg.value("rare_event.exact_sweeps", circuit="c17") == 6
        assert reg.value("rare_event.stratum_samples",
                         circuit="c17", k=2) == 5
        assert obs.get_tracer().find("rare_event.evaluate")


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.sim").name == "repro.sim"

    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_configure_is_idempotent(self):
        root = obs.configure_logging(1)
        n_handlers = len(root.handlers)
        root2 = obs.configure_logging(2)
        assert root2 is root
        assert len(root.handlers) == n_handlers
        assert root.level == logging.DEBUG


class TestRunlog:
    def test_record_round_trip(self, tmp_path):
        obs.enable()
        circuit = c17()
        with obs.trace_span("phase_a"):
            pass
        obs_metrics.inc("widgets", 3)
        record = obs_runlog.build_record(
            "analyze", circuit=circuit,
            params={"eps": 0.05}, results={"delta": 0.12})
        path = tmp_path / "run.jsonl"
        obs_runlog.append_record(path, record)
        obs_runlog.append_record(path, record)
        loaded = obs_runlog.read_runlog(path)
        assert len(loaded) == 2
        rec = loaded[0]
        assert rec["schema_version"] == obs_runlog.SCHEMA_VERSION
        assert rec["command"] == "analyze"
        assert rec["circuit"]["name"] == "c17"
        assert rec["circuit"]["gates"] == 6
        assert rec["params"] == {"eps": 0.05}
        assert rec["results"] == {"delta": 0.12}
        assert rec["phases"] == [{"name": "phase_a",
                                  "duration_s": pytest.approx(
                                      rec["phases"][0]["duration_s"])}]
        assert any(m["name"] == "widgets" and m["value"] == 3
                   for m in rec["metrics"])
        assert rec["library"]["version"]
        assert rec["timestamp"] > 0

    def test_record_without_circuit_or_obs(self, tmp_path):
        record = obs_runlog.build_record("bench")
        assert record.circuit == {}
        assert record.phases == []
        assert record.metrics == []
        path = tmp_path / "r.jsonl"
        obs_runlog.append_record(path, record)
        assert obs_runlog.read_runlog(path)[0]["command"] == "bench"

    def test_numpy_values_serialize(self, tmp_path):
        import numpy as np
        record = obs_runlog.build_record(
            "x", results={"delta": np.float64(0.25), "n": np.int64(7)})
        loaded = json.loads(record.to_json())
        assert loaded["results"] == {"delta": 0.25, "n": 7}

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert obs_runlog.read_runlog(path) == [{"a": 1}, {"b": 2}]


class TestEnableDisable:
    def test_is_enabled_reflects_either_subsystem(self):
        assert not obs.is_enabled()
        obs.enable(tracing=True, metrics_=False)
        assert obs.is_enabled()
        assert obs_trace.is_enabled() and not obs_metrics.is_enabled()
        obs.disable()
        obs.enable(tracing=False, metrics_=True)
        assert obs.is_enabled()
        assert obs_metrics.is_enabled() and not obs_trace.is_enabled()
