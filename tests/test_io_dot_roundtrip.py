"""Tests for the DOT writer plus property-based netlist round trips."""

import pytest
from hypothesis import given, settings

from repro.io import (
    dumps_bench,
    dumps_blif,
    dumps_dot,
    loads_bench,
    loads_blif,
    save_dot,
)
from tests.test_properties import random_dag_circuit


class TestDotWriter:
    def test_structure(self, full_adder_circuit):
        text = dumps_dot(full_adder_circuit)
        assert text.startswith('digraph "fa" {')
        assert text.rstrip().endswith("}")
        assert '"a" [shape=diamond' in text
        assert 'label="t\\nXOR"' in text
        assert '"a" -> "t";' in text

    def test_outputs_double_circled(self, full_adder_circuit):
        text = dumps_dot(full_adder_circuit)
        assert "peripheries=2" in text

    def test_heat_coloring(self, full_adder_circuit):
        heat = {"t": 0.5, "s": 1.0}
        text = dumps_dot(full_adder_circuit, heat=heat, heat_label="delta")
        assert "style=filled" in text
        assert "delta=0.5" in text
        assert "fillcolor=" in text

    def test_heat_single_value(self, full_adder_circuit):
        text = dumps_dot(full_adder_circuit, heat={"t": 0.25})
        assert "fillcolor=" in text  # degenerate range handled

    def test_names_escaped(self):
        from repro.circuit import Circuit, GateType
        c = Circuit('we"ird')
        c.add_input('in"put')
        c.add_gate("y", GateType.NOT, ['in"put'])
        c.set_output("y")
        text = dumps_dot(c)
        assert '\\"' in text

    def test_save(self, tmp_path, tree_circuit):
        path = tmp_path / "t.dot"
        save_dot(tree_circuit, path)
        assert path.read_text().startswith("digraph")

    def test_constants_rendered(self):
        from repro.circuit import Circuit, GateType
        c = Circuit("k")
        c.add_const("one", 1)
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.set_output("y")
        assert "shape=plaintext" in dumps_dot(c)


def _equivalent(c1, c2) -> bool:
    n = len(c1.inputs)
    for k in range(1 << n):
        assignment = {name: (k >> i) & 1
                      for i, name in enumerate(c1.inputs)}
        if c1.evaluate_outputs(assignment) != c2.evaluate_outputs(assignment):
            return False
    return True


@given(random_dag_circuit(max_inputs=4, max_gates=10))
@settings(max_examples=40, deadline=None)
def test_bench_round_trip_property(circuit):
    """Property: .bench serialization round-trips any gate-level circuit."""
    reloaded = loads_bench(dumps_bench(circuit), circuit.name)
    assert set(reloaded.outputs) == set(circuit.outputs)
    assert _equivalent(circuit, reloaded)


@given(random_dag_circuit(max_inputs=4, max_gates=10))
@settings(max_examples=40, deadline=None)
def test_blif_round_trip_property(circuit):
    """Property: BLIF serialization round-trips any gate-level circuit."""
    reloaded = loads_blif(dumps_blif(circuit))
    assert set(reloaded.outputs) == set(circuit.outputs)
    assert _equivalent(circuit, reloaded)


@given(random_dag_circuit(max_inputs=4, max_gates=8))
@settings(max_examples=25, deadline=None)
def test_dot_always_renders(circuit):
    text = dumps_dot(circuit)
    assert text.count("->") >= circuit.num_gates  # at least one edge per gate
