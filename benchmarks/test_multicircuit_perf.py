"""Multi-circuit tensor kernel vs sequential per-circuit compiled calls.

The workload the engine's cross-session batching answers: a mixed
16-circuit catalog batch, 32 eps points per circuit.  The sequential
arm runs one :meth:`CompiledSinglePass.run_sweep` per circuit (what the
engine did before cross-session batching existed); the tensor arm runs
the same plans through one merged :class:`TensorBatch` pass.  Plans and
the merged batch are built outside the timed regions — plan lowering is
once-per-session and the engine memoizes the batch per composition.

Acceptance floor: the tensor pass must beat the sequential loop by
>= 3x, with per-circuit parity <= 1e-10 against the solo kernels.
Timings land in ``results/multicircuit_perf.txt`` (human-readable) and
``results/BENCH_multicircuit.json`` (machine-readable trajectory).
"""

import time

import numpy as np
import pytest

from repro.circuits import get_benchmark, list_benchmarks
from repro.probability.weights import compute_weights
from repro.reliability.compiled_pass import CompiledSinglePass
from repro.reliability.tensor_pass import TensorBatch

from conftest import record_multicircuit, write_result

#: The 16-circuit mixed batch: every catalog circuit that isn't one of
#: the two giant stand-ins (whose solo sweeps dwarf the dispatch
#: overhead the tensor path removes — they are served fine solo).
CIRCUITS = tuple(n for n in list_benchmarks()
                 if n not in ("c6288", "i10"))[:16]

N_POINTS = 32
EPS = [float(e) for e in np.linspace(0.001, 0.1, N_POINTS)]

#: Timing repetitions; the minimum is reported (steady-state cost).
REPEATS = 5

MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def plans():
    assert len(CIRCUITS) == 16
    built = []
    for name in CIRCUITS:
        circuit = get_benchmark(name)
        weights = compute_weights(circuit, method="sampled",
                                  n_patterns=1 << 10, seed=0)
        built.append(CompiledSinglePass(circuit, weights))
    return built


@pytest.fixture(scope="module")
def batch(plans):
    return TensorBatch(plans)


def _time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_tensor_batch_speedup(plans, batch):
    solo_sweeps = [plan.run_sweep(EPS) for plan in plans]  # warm-up + ref

    sequential_s = _time(lambda: [plan.run_sweep(EPS) for plan in plans])
    tensor_s = _time(lambda: batch.run_sweep([EPS] * len(plans)))
    speedup = sequential_s / tensor_s

    # Parity: every circuit's tensor results match its solo kernel.
    sweeps = batch.run_sweep([EPS] * len(plans))
    worst = 0.0
    for solo, sweep in zip(solo_sweeps, sweeps):
        worst = max(worst,
                    float(np.abs(sweep.p01 - solo.p01).max()),
                    float(np.abs(sweep.per_output - solo.per_output).max()))
    assert worst <= 1e-10

    record_multicircuit("sequential", len(plans), N_POINTS, sequential_s)
    record_multicircuit("tensor", len(plans), N_POINTS, tensor_s,
                        speedup_vs_sequential=speedup)
    lines = [
        "multi-circuit tensor kernel "
        f"({len(plans)} circuits x {N_POINTS} eps points)",
        f"{'variant':<12s} {'best_s':>10s} {'speedup':>9s}",
        f"{'sequential':<12s} {sequential_s:>10.4f} {'1.0x':>9s}",
        f"{'tensor':<12s} {tensor_s:>10.4f} {speedup:>8.2f}x",
        f"merged groups: {batch.num_groups} "
        f"(vs {batch.unmerged_groups} sequential dispatches), "
        f"pad waste rows: {batch.pad_waste_rows}",
        f"worst parity diff: {worst:.2e}",
    ]
    write_result("multicircuit_perf.txt", "\n".join(lines) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"tensor batch only {speedup:.2f}x over sequential per-circuit "
        f"kernels (floor {MIN_SPEEDUP}x)")
