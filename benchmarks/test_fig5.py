"""Regenerates Fig. 5: consolidated error of two correlated outputs of b9.

The paper uses two correlated outputs of b9 to show that correlation
coefficients make the consolidated (either-output-errs) probability track
Monte Carlo, where assuming output independence does not.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, input_support
from repro.circuits import get_benchmark
from repro.reliability import ConsolidatedAnalyzer, SinglePassAnalyzer
from repro.sim import monte_carlo_reliability

from conftest import LEVEL_GAP, MC_PATTERNS, write_result

EPS_POINTS = [0.02, 0.05, 0.08, 0.12, 0.16, 0.2]


def _most_correlated_output_pair(circuit: Circuit):
    """Pick the output pair sharing the most primary-input support."""
    supp = input_support(circuit)
    best, best_overlap = None, -1
    outs = circuit.outputs
    for i in range(len(outs)):
        for j in range(i + 1, len(outs)):
            overlap = len(supp[outs[i]] & supp[outs[j]])
            if overlap > best_overlap:
                best, best_overlap = (outs[i], outs[j]), overlap
    return best


def _sub_circuit(circuit: Circuit, outputs):
    keep = set(circuit.transitive_fanin(outputs))
    sub = Circuit(f"{circuit.name}_pair")
    for name in circuit.topological_order():
        if name in keep:
            sub._add_node(circuit.node(name))
    for o in outputs:
        sub.set_output(o)
    return sub


def _run():
    b9 = get_benchmark("b9")
    pair = _most_correlated_output_pair(b9)
    sub = _sub_circuit(b9, pair)
    analyzer = ConsolidatedAnalyzer(
        sub, analyzer=SinglePassAnalyzer(
            sub, max_correlation_level_gap=LEVEL_GAP, seed=0))
    rows = []
    for i, eps in enumerate(EPS_POINTS):
        result = analyzer.run(eps)
        mc = monte_carlo_reliability(sub, eps, n_patterns=MC_PATTERNS,
                                     seed=500 + i)
        rows.append((eps, result.any_output, result.any_output_independent,
                     mc.any_output))
    return pair, sub, rows


def test_fig5_consolidated_pair(benchmark):
    pair, sub, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"Fig. 5 reproduction — consolidated error of b9 outputs "
             f"{pair[0]}/{pair[1]} ({sub.num_gates} gates in the pair cone)",
             f"{'eps':>6s} {'with corr':>10s} {'independent':>12s} "
             f"{'monte carlo':>12s}"]
    corr_err, indep_err = [], []
    for eps, corr, indep, mc in rows:
        lines.append(f"{eps:6.3f} {corr:10.5f} {indep:12.5f} {mc:12.5f}")
        corr_err.append(abs(corr - mc))
        indep_err.append(abs(indep - mc))
    lines.append(f"mean |err| with correlation: {np.mean(corr_err):.5f}")
    lines.append(f"mean |err| independent:      {np.mean(indep_err):.5f}")
    write_result("fig5.txt", "\n".join(lines))

    # Paper shape: correlation-corrected consolidation tracks MC at least
    # as well as the independence assumption, and closely in absolute terms.
    assert np.mean(corr_err) <= np.mean(indep_err) + 0.005
    assert np.mean(corr_err) < 0.03
