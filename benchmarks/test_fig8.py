"""Regenerates Fig. 8: redundancy-free reliability across syntheses.

Two syntheses of the *same* Boolean functions (identical gate count) — a
shallow balanced version and a deep chained version of the b9-scale
stand-in — are compared by consolidated output error.  The paper's claim:
the version with fewer levels of logic is more reliable, because inputs
pass through fewer levels of noise.

The paper plots eps in [0, 0.15]; our stand-ins have more outputs than the
real b9 keeps distinguishable there, so the sweep concentrates on the
pre-saturation region (documented in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.circuit import circuit_stats
from repro.circuits import get_benchmark
from repro.reliability import ConsolidatedAnalyzer, SinglePassAnalyzer
from repro.sim import monte_carlo_reliability

from conftest import LEVEL_GAP, MC_PATTERNS, write_result

EPS_POINTS = [0.0, 0.005, 0.01, 0.02, 0.03, 0.05]


def _curve(circuit):
    analyzer = ConsolidatedAnalyzer(
        circuit, analyzer=SinglePassAnalyzer(
            circuit, max_correlation_level_gap=LEVEL_GAP, seed=0),
        n_patterns=1 << 14)
    analytic = {}
    sampled = {}
    for i, eps in enumerate(EPS_POINTS):
        analytic[eps] = analyzer.run(eps).any_output
        sampled[eps] = monte_carlo_reliability(
            circuit, eps, n_patterns=MC_PATTERNS, seed=800 + i).any_output
    return analytic, sampled


def _run():
    shallow = get_benchmark("b9_low_fanout")
    deep = get_benchmark("b9_high_fanout")
    return {
        "shallow": (circuit_stats(shallow), *_curve(shallow)),
        "deep": (circuit_stats(deep), *_curve(deep)),
    }


def test_fig8_redundancy_free_exploration(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["Fig. 8 reproduction — consolidated output error, same-function"
             " shallow vs deep synthesis (no redundancy added)"]
    for label, (stats, analytic, sampled) in data.items():
        lines.append(f"\n{label}: depth={stats.depth} "
                     f"total-levels={stats.total_output_levels} "
                     f"gates={stats.num_gates}")
        lines.append(f"{'eps':>6s} {'analytic':>10s} {'monte carlo':>12s}")
        for eps in EPS_POINTS:
            lines.append(f"{eps:6.3f} {analytic[eps]:10.5f} "
                         f"{sampled[eps]:12.5f}")
    write_result("fig8.txt", "\n".join(lines))

    shallow_stats, shallow_an, shallow_mc = data["shallow"]
    deep_stats, deep_an, deep_mc = data["deep"]
    # Same size, different depth (the controlled covariate).
    assert shallow_stats.num_gates == deep_stats.num_gates
    assert shallow_stats.depth < deep_stats.depth
    # Paper shape: fewer levels => lower consolidated error, in both the
    # analytic curves and the Monte Carlo ground truth.
    for eps in EPS_POINTS[1:]:
        assert shallow_mc[eps] < deep_mc[eps] + 0.01, eps
        assert shallow_an[eps] < deep_an[eps] + 0.02, eps
