"""Regenerates Fig. 7: per-output error of c499 under random eps vectors.

The paper draws eps_i ~ Uniform(0, 0.5) independently for every gate, runs
1000 times, and reports the average % error of single-pass analysis per
output (1.5–3.5% per output on real c499).  We run a reduced number of
random draws by default (REPRO_BENCH_FULL=1 for more).
"""

import numpy as np
import pytest

from repro.circuits import get_benchmark
from repro.reliability import SinglePassAnalyzer
from repro.sim import monte_carlo_reliability

from conftest import FULL, LEVEL_GAP, MC_PATTERNS, write_result

N_RUNS = 50 if FULL else 8


def _run():
    circuit = get_benchmark("c499")
    analyzer = SinglePassAnalyzer(
        circuit, weight_method="sampled", n_patterns=1 << 15,
        max_correlation_level_gap=LEVEL_GAP, seed=0)
    rng = np.random.default_rng(499)
    per_output_errors = {o: [] for o in circuit.outputs}
    for run in range(N_RUNS):
        eps = {g: float(rng.uniform(0, 0.5))
               for g in circuit.topological_gates()}
        sp = analyzer.run(eps)
        mc = monte_carlo_reliability(circuit, eps, n_patterns=MC_PATTERNS,
                                     seed=900 + run)
        for out in circuit.outputs:
            denom = max(mc.per_output[out], 1e-9)
            per_output_errors[out].append(
                abs(sp.per_output[out] - mc.per_output[out]) / denom * 100)
    return {o: float(np.mean(v)) for o, v in per_output_errors.items()}


def test_fig7_random_eps_per_output(benchmark):
    means = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"Fig. 7 reproduction — c499 stand-in, avg % error per output "
             f"over {N_RUNS} runs with eps_i ~ U(0, 0.5) per gate",
             f"{'output':>8s} {'avg % error':>12s}"]
    for out, err in means.items():
        lines.append(f"{out:>8s} {err:12.2f}")
    lines.append(f"min={min(means.values()):.2f}  "
                 f"max={max(means.values()):.2f}  "
                 f"mean={np.mean(list(means.values())):.2f}")
    write_result("fig7.txt", "\n".join(lines))

    # Paper shape: every output's average error stays in the low single
    # digits even with fully heterogeneous eps (paper: 1.5–3.5%).
    assert max(means.values()) < 8.0
    assert np.mean(list(means.values())) < 4.0
