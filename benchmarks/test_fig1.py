"""Regenerates Fig. 1(b)/(c): observability closed form vs Monte Carlo.

Fig. 1(b): on the small illustration circuit the closed form tracks Monte
Carlo over the whole eps range, deviating only slightly near eps = 0.5.

Fig. 1(c): on one output of b9 the closed form is accurate for small eps
and diverges as eps grows (multiple simultaneous gate failures are not
captured by statically computed observabilities).
"""

import numpy as np
import pytest

from repro.circuits import fig1_circuit, get_benchmark
from repro.reliability import ObservabilityModel
from repro.sim import monte_carlo_reliability

from conftest import MC_PATTERNS, write_result

EPS_POINTS = [i / 20 * 0.5 for i in range(21)]  # 0 .. 0.5


def _curves(circuit, output, mc_patterns):
    model = ObservabilityModel(circuit, output=output)
    rows = []
    for i, eps in enumerate(EPS_POINTS):
        mc = monte_carlo_reliability(circuit, eps, n_patterns=mc_patterns,
                                     seed=300 + i).per_output[output]
        rows.append((eps, model.delta(eps), mc))
    return rows


def test_fig1b_small_circuit(benchmark):
    circuit = fig1_circuit()
    rows = benchmark.pedantic(
        _curves, args=(circuit, "y", max(MC_PATTERNS, 1 << 15)),
        rounds=1, iterations=1)
    lines = ["Fig. 1(b) reproduction — fig1a stand-in, closed form vs MC",
             f"{'eps':>6s} {'closed-form':>12s} {'monte carlo':>12s}"]
    for eps, cf, mc in rows:
        lines.append(f"{eps:6.3f} {cf:12.5f} {mc:12.5f}")
    gaps = [abs(cf - mc) for _, cf, mc in rows]
    lines.append(f"max |gap| = {max(gaps):.4f}")
    write_result("fig1b.txt", "\n".join(lines))
    # Paper shape: highly accurate on the small circuit across the range.
    assert max(gaps) < 0.05


def test_fig1c_b9_output(benchmark):
    circuit = get_benchmark("b9")
    output = circuit.outputs[0]
    cone = circuit.cone(output)
    rows = benchmark.pedantic(_curves, args=(cone, output, MC_PATTERNS),
                              rounds=1, iterations=1)
    lines = [f"Fig. 1(c) reproduction — b9 stand-in output {output} "
             f"(cone of {cone.num_gates} gates), closed form vs MC",
             f"{'eps':>6s} {'closed-form':>12s} {'monte carlo':>12s}"]
    for eps, cf, mc in rows:
        lines.append(f"{eps:6.3f} {cf:12.5f} {mc:12.5f}")
    write_result("fig1c.txt", "\n".join(lines))

    # Paper shape: accurate for small eps...
    small = [abs(cf - mc) for eps, cf, mc in rows if 0 < eps <= 0.05]
    assert max(small) < 0.025
    # ...with a larger error appearing as eps increases.
    large = [abs(cf - mc) for eps, cf, mc in rows if 0.2 <= eps <= 0.4]
    assert max(large) > max(small)
