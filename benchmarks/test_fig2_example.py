"""Regenerates the Fig. 2 worked example of single-pass analysis.

Prints, for every gate of the illustration circuit, its weight vector, its
local failure probability, and the propagated Pr(0->1)/Pr(1->0) pair — the
annotations the paper's Fig. 2 carries — and cross-checks the resulting
output delta against the exhaustive-exact oracle.
"""

import pytest

from repro.circuits import fig2_circuit
from repro.reliability import SinglePassAnalyzer, exhaustive_exact_reliability

from conftest import write_result

EPS = 0.05


def _worked_example():
    circuit = fig2_circuit()
    analyzer = SinglePassAnalyzer(circuit, weight_method="exhaustive")
    result = analyzer.run(EPS)
    exact = exhaustive_exact_reliability(circuit, EPS)
    return circuit, analyzer, result, exact


def test_fig2_worked_example(benchmark):
    circuit, analyzer, result, exact = benchmark.pedantic(
        _worked_example, rounds=1, iterations=1)
    lines = [f"Fig. 2 reproduction — single-pass worked example (eps={EPS})",
             f"{'gate':>5s} {'type':>5s} {'weight vector':>28s} "
             f"{'Pr(0->1)':>9s} {'Pr(1->0)':>9s}"]
    for gate in circuit.topological_gates():
        node = circuit.node(gate)
        w = analyzer.weights.weights[gate]
        ep = result.node_errors[gate]
        wtext = " ".join(f"{v:.3f}" for v in w)
        lines.append(f"{gate:>5s} {node.gate_type.value:>5s} {wtext:>28s} "
                     f"{ep.p01:9.5f} {ep.p10:9.5f}")
    lines.append(f"delta(n6): single-pass={result.delta():.6f} "
                 f"exact={exact.delta():.6f}")
    write_result("fig2_example.txt", "\n".join(lines))

    # Paper-text anchors: gate 1's weight vector is uniform (primary-input
    # fed), and its error probabilities both equal the local eps.
    import numpy as np
    np.testing.assert_allclose(analyzer.weights.weights["n1"], [0.25] * 4)
    assert result.node_errors["n1"].p01 == pytest.approx(EPS)
    assert result.node_errors["n1"].p10 == pytest.approx(EPS)
    # The analysis tracks the exact oracle closely on this 6-gate example.
    assert result.delta() == pytest.approx(exact.delta(), abs=0.01)
