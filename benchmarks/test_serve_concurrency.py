"""Serve-tier concurrency: async micro-batching vs threaded baseline.

Eight concurrent TCP clients each pipeline a dozen plain-mode sweep
requests (32 eps points over a 16-circuit catalog).  The legacy
thread-per-connection server answers them one engine call at a time,
serialized through the GIL; the asyncio front-end drains whatever the
clients have queued into single ``submit_many`` micro-batches, where
same-circuit requests coalesce and different circuits merge into
cross-circuit tensor passes.  The aggregate-throughput ratio is the
serve-tier acceptance gate (>= 3x) and is recorded to
``BENCH_serve.json`` for the CI roll-up.
"""

import json
import socket
import threading
import time

import numpy as np

from repro.circuits.catalog import list_benchmarks
from repro.engine import AnalysisEngine, serve_tcp, serve_tcp_threaded

from conftest import record_serve, write_result

#: 16 catalog circuits, skipping the two largest (c6288's multiplier
#: depth and i10's size dominate wall time without changing the story).
CATALOG = [name for name in list_benchmarks()
           if name not in ("c6288", "i10")][:16]

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
#: Pool of eps values; each request sweeps a narrow 4-point window —
#: the interactive workload shape (a designer probing a few points per
#: call).  Narrow requests are exactly where micro-batching pays: the
#: solo kernel's per-level-group Python overhead is amortized over only
#: 4 columns, while the merged tensor pass amortizes it over every
#: concurrent request at once.
EPS_POOL = [round(float(e), 6) for e in np.linspace(0.001, 0.2, 32)]
POINTS_PER_REQUEST = 4
OPTS = {"weights": "sampled", "n_patterns": 1 << 10, "seed": 1}


def _boot(serve_fn):
    """Start one server arm on an ephemeral port; return (engine, port)."""
    engine = AnalysisEngine(max_sessions=len(CATALOG) + 4)
    ready = threading.Event()
    box = {}

    def on_ready(port):
        box["port"] = port
        ready.set()

    thread = threading.Thread(
        target=serve_fn, args=(engine, "127.0.0.1", 0),
        kwargs={"ready_callback": on_ready}, daemon=True)
    thread.start()
    assert ready.wait(30), "server never came up"
    return engine, box["port"]


def _request(client_idx, i):
    # Two circuits per client, interleaved: concurrent clients overlap on
    # circuits (coalescing fodder) *and* spread across the catalog
    # (tensor-batch fodder).
    name = CATALOG[(2 * client_idx + i) % len(CATALOG)]
    start = (client_idx * REQUESTS_PER_CLIENT + i) % (
        len(EPS_POOL) - POINTS_PER_REQUEST)
    return {"id": f"{client_idx}-{i}", "op": "analyze", "circuit": name,
            "eps": EPS_POOL[start:start + POINTS_PER_REQUEST],
            "correlation": False, "options": dict(OPTS)}


def _warm(port):
    """One serial pass over the catalog: both arms start with hot
    sessions, so the measured ratio is scheduling, not session builds."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=120)
    stream = sock.makefile("rwb")
    try:
        for name in CATALOG:
            stream.write((json.dumps({
                "op": "analyze", "circuit": name, "eps": EPS_POOL[:1],
                "correlation": False, "options": dict(OPTS)}) +
                "\n").encode())
            stream.flush()
            envelope = json.loads(stream.readline())
            assert envelope["ok"], envelope.get("error")
    finally:
        sock.close()


def _drive_clients(port):
    """All clients pipeline their full request list, then read replies."""
    errors = []

    def client(idx):
        try:
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=300)
            stream = sock.makefile("rwb")
            try:
                payload = "".join(
                    json.dumps(_request(idx, i)) + "\n"
                    for i in range(REQUESTS_PER_CLIENT))
                stream.write(payload.encode())
                stream.flush()
                for _ in range(REQUESTS_PER_CLIENT):
                    envelope = json.loads(stream.readline())
                    assert envelope["ok"], envelope.get("error")
            finally:
                sock.close()
        except Exception as exc:  # surfaced after join
            errors.append((idx, exc))

    threads = [threading.Thread(target=client, args=(idx,))
               for idx in range(N_CLIENTS)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - started
    assert not errors, errors
    return wall


def _measure(serve_fn):
    engine, port = _boot(serve_fn)
    try:
        _warm(port)
        return _drive_clients(port)
    finally:
        engine.close()


def test_async_micro_batching_vs_threaded():
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    threaded_wall = _measure(serve_tcp_threaded)
    async_wall = _measure(serve_tcp)
    speedup = threaded_wall / async_wall
    threaded_rps = total / threaded_wall
    async_rps = total / async_wall

    record_serve("threaded", N_CLIENTS, total, threaded_wall, threaded_rps)
    record_serve("async", N_CLIENTS, total, async_wall, async_rps,
                 speedup_vs_threaded=speedup)

    lines = [
        "serve-tier concurrency: 8 pipelined TCP clients, "
        f"{total} plain-mode sweep requests "
        f"({len(CATALOG)} circuits x {POINTS_PER_REQUEST}-point "
        "windows)",
        "",
        f"{'mode':<10s} {'wall_s':>8s} {'req/s':>8s} {'speedup':>8s}",
        f"{'threaded':<10s} {threaded_wall:>8.3f} {threaded_rps:>8.1f} "
        f"{'1.00x':>8s}",
        f"{'async':<10s} {async_wall:>8.3f} {async_rps:>8.1f} "
        f"{speedup:>7.2f}x",
    ]
    write_result("serve_concurrency.txt", "\n".join(lines) + "\n")

    # The serve-tier acceptance gate: micro-batched dispatch must yield
    # at least 3x the threaded baseline's aggregate throughput.
    assert speedup >= 3.0, (
        f"async serve speedup {speedup:.2f}x < 3x acceptance floor")
