"""Shared infrastructure for the paper-reproduction benchmark harness.

Each ``test_*`` module regenerates one table or figure from the paper
(see DESIGN.md, experiment index).  Results are printed and also written
to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite them.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run closer to paper-scale sample sizes
  (more Monte Carlo patterns, more eps points, more random-eps runs).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable single-pass perf trajectory (see test_compiled_perf.py).
BENCH_SINGLEPASS = RESULTS_DIR / "BENCH_singlepass.json"

#: Machine-readable engine warm/cold trajectory (see test_engine_perf.py).
BENCH_ENGINE = RESULTS_DIR / "BENCH_engine.json"

#: Machine-readable incremental-vs-from-scratch trajectory
#: (see test_incremental_perf.py).
BENCH_INCREMENTAL = RESULTS_DIR / "BENCH_incremental.json"

#: Machine-readable multi-circuit tensor-batch trajectory
#: (see test_multicircuit_perf.py).
BENCH_MULTICIRCUIT = RESULTS_DIR / "BENCH_multicircuit.json"

#: Machine-readable serve-tier concurrency trajectory
#: (see test_serve_concurrency.py).
BENCH_SERVE = RESULTS_DIR / "BENCH_serve.json"

#: Machine-readable sequential (k-frame unrolled) sweep trajectory
#: (see test_sequential_perf.py).
BENCH_SEQUENTIAL = RESULTS_DIR / "BENCH_sequential.json"

#: Machine-readable large-netlist lazy-cone trajectory
#: (see test_scale_perf.py).
BENCH_SCALE = RESULTS_DIR / "BENCH_scale.json"

#: Aggregated roll-up of every BENCH_*.json written by this session
#: (consumed by the CI benchmarks artifact job).
BENCH_SUMMARY = RESULTS_DIR / "BENCH_summary.json"

_singlepass_records = []
_engine_records = []
_incremental_records = []
_multicircuit_records = []
_serve_records = []
_sequential_records = []
_scale_records = []


def record_singlepass(circuit: str, variant: str, mean_s: float,
                      speedup_vs_scalar=None) -> None:
    """Queue one timing row for ``BENCH_singlepass.json``.

    Rows follow the fixed schema
    ``{circuit, variant, mean_s, speedup_vs_scalar}`` so successive runs
    can be diffed/plotted as a perf trajectory; ``speedup_vs_scalar`` is
    null for the scalar baselines themselves.
    """
    _singlepass_records.append({
        "circuit": str(circuit),
        "variant": str(variant),
        "mean_s": float(mean_s),
        "speedup_vs_scalar": (None if speedup_vs_scalar is None
                              else float(speedup_vs_scalar)),
    })


def record_engine(circuit: str, phase: str, mean_s: float,
                  speedup_vs_cold=None) -> None:
    """Queue one timing row for ``BENCH_engine.json``.

    Rows follow the fixed schema
    ``{circuit, phase, mean_s, speedup_vs_cold}``; ``speedup_vs_cold``
    is null for the cold baseline row itself.
    """
    _engine_records.append({
        "circuit": str(circuit),
        "phase": str(phase),
        "mean_s": float(mean_s),
        "speedup_vs_cold": (None if speedup_vs_cold is None
                            else float(speedup_vs_cold)),
    })


def record_incremental(circuit: str, loop: str, mean_s: float,
                       speedup_vs_scratch=None) -> None:
    """Queue one timing row for ``BENCH_incremental.json``.

    Rows follow the fixed schema
    ``{circuit, loop, mean_s, speedup_vs_scratch}``; ``loop`` names the
    measured arm (e.g. ``"from_scratch"`` / ``"incremental"``) and
    ``speedup_vs_scratch`` is null for the from-scratch baseline itself.
    """
    _incremental_records.append({
        "circuit": str(circuit),
        "loop": str(loop),
        "mean_s": float(mean_s),
        "speedup_vs_scratch": (None if speedup_vs_scratch is None
                               else float(speedup_vs_scratch)),
    })


def record_multicircuit(variant: str, circuits: int, points: int,
                        mean_s: float, speedup_vs_sequential=None) -> None:
    """Queue one timing row for ``BENCH_multicircuit.json``.

    Rows follow the fixed schema
    ``{variant, circuits, points, mean_s, speedup_vs_sequential}``;
    ``variant`` names the measured arm (``"sequential"`` /
    ``"tensor"``) and ``speedup_vs_sequential`` is null for the
    sequential baseline itself.
    """
    _multicircuit_records.append({
        "variant": str(variant),
        "circuits": int(circuits),
        "points": int(points),
        "mean_s": float(mean_s),
        "speedup_vs_sequential": (None if speedup_vs_sequential is None
                                  else float(speedup_vs_sequential)),
    })


def record_serve(mode: str, clients: int, requests: int, wall_s: float,
                 rps: float, speedup_vs_threaded=None) -> None:
    """Queue one timing row for ``BENCH_serve.json``.

    Rows follow the fixed schema
    ``{mode, clients, requests, wall_s, rps, speedup_vs_threaded}``;
    ``mode`` names the measured arm (``"threaded"`` / ``"async"``) and
    ``speedup_vs_threaded`` is null for the threaded baseline itself.
    """
    _serve_records.append({
        "mode": str(mode),
        "clients": int(clients),
        "requests": int(requests),
        "wall_s": float(wall_s),
        "rps": float(rps),
        "speedup_vs_threaded": (None if speedup_vs_threaded is None
                                else float(speedup_vs_threaded)),
    })


def record_sequential(circuit: str, frames: int, variant: str, points: int,
                      mean_s: float, speedup_vs_scalar=None) -> None:
    """Queue one timing row for ``BENCH_sequential.json``.

    Rows follow the fixed schema
    ``{circuit, frames, variant, points, mean_s, speedup_vs_scalar}``;
    ``variant`` names the measured arm (``"scalar"`` / ``"compiled"``)
    and ``speedup_vs_scalar`` is null for the scalar baseline itself.
    """
    _sequential_records.append({
        "circuit": str(circuit),
        "frames": int(frames),
        "variant": str(variant),
        "points": int(points),
        "mean_s": float(mean_s),
        "speedup_vs_scalar": (None if speedup_vs_scalar is None
                              else float(speedup_vs_scalar)),
    })


def record_scale(circuit: str, variant: str, gates: int, cone_gates: int,
                 mean_s: float, speedup_vs_full=None) -> None:
    """Queue one timing row for ``BENCH_scale.json``.

    Rows follow the fixed schema
    ``{circuit, variant, gates, cone_gates, mean_s, speedup_vs_full}``;
    ``variant`` names the measured arm (``"full"`` / ``"lazy_cone"`` /
    ``"sat_cone"``) and ``speedup_vs_full`` is null for the full-build
    baseline itself.
    """
    _scale_records.append({
        "circuit": str(circuit),
        "variant": str(variant),
        "gates": int(gates),
        "cone_gates": int(cone_gates),
        "mean_s": float(mean_s),
        "speedup_vs_full": (None if speedup_vs_full is None
                            else float(speedup_vs_full)),
    })


def pytest_sessionfinish(session, exitstatus):
    """Flush queued timings once the benchmark session ends."""
    queues = [
        (BENCH_SINGLEPASS, _singlepass_records),
        (BENCH_ENGINE, _engine_records),
        (BENCH_INCREMENTAL, _incremental_records),
        (BENCH_MULTICIRCUIT, _multicircuit_records),
        (BENCH_SERVE, _serve_records),
        (BENCH_SEQUENTIAL, _sequential_records),
        (BENCH_SCALE, _scale_records),
    ]
    for path, records in queues:
        if records:
            RESULTS_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(records, indent=2) + "\n")
    # Roll every BENCH_*.json currently on disk (this run's or an earlier
    # one's) into one summary document for the CI artifact upload.
    summary = {}
    if RESULTS_DIR.is_dir():
        for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
            if path.name == BENCH_SUMMARY.name:
                continue
            try:
                summary[path.stem] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
    if summary:
        BENCH_SUMMARY.write_text(json.dumps(summary, indent=2) + "\n")

#: Scale factor: full mode uses paper-like sampling, default is CI-sized.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Monte Carlo pattern budget per eps point.
MC_PATTERNS = 1 << (18 if FULL else 14)

#: Level-gap cap for the correlation engine on the big stand-ins.
LEVEL_GAP = None if FULL else 6


def write_result(name: str, text: str) -> None:
    """Persist one experiment's regenerated table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)
    print()
    print(text)


def relative_errors(per_output_a, per_output_b, floor=1e-9):
    """Per-output percentage differences |a-b|/max(b, floor) * 100."""
    return [abs(per_output_a[o] - per_output_b[o])
            / max(per_output_b[o], floor) * 100.0
            for o in per_output_b]


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2007)
