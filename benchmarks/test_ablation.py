"""Ablation benchmarks for the design choices DESIGN.md calls out.

(i)   Correlation coefficients on/off: how much of the single-pass error on
      reconvergent circuits the Sec. 4.1 machinery removes.
(ii)  Weight-vector source: exact (exhaustive/BDD) vs sampled weights.
(iii) Closed-form error growth with the number of noisy gates (the Sec. 3.1
      observation that accuracy degrades as more gates are noisy).
(iv)  Correlation locality cap (level gap): cost/accuracy trade.
"""

import numpy as np
import pytest

from repro.circuits import get_benchmark
from repro.probability import exhaustive_weight_vectors, sampled_weight_vectors
from repro.reliability import (
    ObservabilityModel,
    SinglePassAnalyzer,
    exhaustive_exact_reliability,
)
from repro.sim import monte_carlo_reliability

from conftest import MC_PATTERNS, relative_errors, write_result


def test_ablation_correlation_on_off(benchmark):
    def run():
        rows = []
        for name in ("cu", "b9", "c1355"):
            circuit = get_benchmark(name)
            weights = sampled_weight_vectors(circuit, n_patterns=1 << 15)
            on = SinglePassAnalyzer(circuit, weights=weights,
                                    use_correlation=True,
                                    max_correlation_level_gap=8)
            off = SinglePassAnalyzer(circuit, weights=weights,
                                     use_correlation=False)
            eps = 0.05
            mc = monte_carlo_reliability(circuit, eps,
                                         n_patterns=MC_PATTERNS, seed=1)
            err_on = np.mean(relative_errors(on.run(eps).per_output,
                                             mc.per_output))
            err_off = np.mean(relative_errors(off.run(eps).per_output,
                                              mc.per_output))
            rows.append((name, err_on, err_off))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation (i): correlation coefficients on/off, eps=0.05",
             f"{'bench':8s} {'avg % err (corr)':>17s} {'avg % err (ind)':>16s}"]
    for name, on, off in rows:
        lines.append(f"{name:8s} {on:17.2f} {off:16.2f}")
    write_result("ablation_correlation.txt", "\n".join(lines))
    # Correlation must help overall (sum across benches).
    assert sum(on for _, on, _ in rows) < sum(off for _, _, off in rows)


def test_ablation_weight_source(benchmark):
    def run():
        circuit = get_benchmark("cu")  # 14 inputs: exhaustive feasible
        exact_w = exhaustive_weight_vectors(circuit)
        rows = []
        for n_patterns in (1 << 10, 1 << 13, 1 << 16):
            sampled_w = sampled_weight_vectors(circuit,
                                               n_patterns=n_patterns, seed=2)
            eps = 0.1
            exact_delta = SinglePassAnalyzer(
                circuit, weights=exact_w).run(eps).per_output
            sampled_delta = SinglePassAnalyzer(
                circuit, weights=sampled_w).run(eps).per_output
            gap = max(abs(exact_delta[o] - sampled_delta[o])
                      for o in exact_delta)
            rows.append((n_patterns, gap))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation (ii): sampled vs exact weight vectors, cu, eps=0.1",
             f"{'patterns':>9s} {'max |delta gap|':>16s}"]
    for n, gap in rows:
        lines.append(f"{n:9d} {gap:16.5f}")
    write_result("ablation_weights.txt", "\n".join(lines))
    # More patterns => weights converge to exact.
    assert rows[-1][1] <= rows[0][1] + 1e-6
    assert rows[-1][1] < 0.01


def test_ablation_closed_form_error_growth(benchmark):
    """Sec. 3.1: closed-form accuracy depends on how many gates are noisy."""
    def run():
        circuit = get_benchmark("fig2")
        model = ObservabilityModel(circuit)
        gates = circuit.topological_gates()
        eps_value = 0.15
        rows = []
        for k in range(1, len(gates) + 1):
            eps = {g: eps_value for g in gates[:k]}
            cf = model.delta(eps)
            exact = exhaustive_exact_reliability(circuit, eps).delta()
            rows.append((k, abs(cf - exact)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation (iii): closed-form |error| vs number of noisy gates "
             "(fig2, eps=0.15)",
             f"{'noisy gates':>12s} {'|cf - exact|':>13s}"]
    for k, gap in rows:
        lines.append(f"{k:12d} {gap:13.6f}")
    write_result("ablation_closed_form.txt", "\n".join(lines))
    # One noisy gate: single-failure regime, closed form near exact.
    assert rows[0][1] < 1e-6
    # All gates noisy: visible multi-failure error.
    assert rows[-1][1] > rows[0][1]


def test_ablation_noisy_observability(benchmark):
    """Sec. 3.1(ii): noise distorts observability — measure the drift."""
    def run():
        from repro.circuits import fig2_circuit
        from repro.sim import monte_carlo_observabilities, noisy_observabilities
        circuit = fig2_circuit()
        noiseless = monte_carlo_observabilities(circuit,
                                                n_patterns=1 << 14, seed=1)
        rows = []
        for eps in (0.0, 0.05, 0.15, 0.3):
            noisy = noisy_observabilities(circuit, eps,
                                          n_patterns=1 << 14, seed=1)
            drift = np.mean([abs(noisy[g] - noiseless[g])
                             for g in noiseless])
            rows.append((eps, float(drift)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation (v): observability distortion under noise (fig2)",
             f"{'eps':>6s} {'mean |o_noisy - o|':>19s}"]
    for eps, drift in rows:
        lines.append(f"{eps:6.2f} {drift:19.4f}")
    write_result("ablation_noisy_observability.txt", "\n".join(lines))
    # Drift grows with eps (the reason the closed form degrades, Fig. 1c).
    assert rows[-1][1] > rows[0][1] + 0.02


def test_ablation_level_gap(benchmark):
    def run():
        circuit = get_benchmark("c1908")
        weights = sampled_weight_vectors(circuit, n_patterns=1 << 15)
        eps = 0.1
        mc = monte_carlo_reliability(circuit, eps, n_patterns=MC_PATTERNS,
                                     seed=3)
        rows = []
        import time
        for gap in (2, 6, 12, None):
            analyzer = SinglePassAnalyzer(circuit, weights=weights,
                                          max_correlation_level_gap=gap)
            t0 = time.perf_counter()
            result = analyzer.run(eps)
            elapsed = time.perf_counter() - t0
            err = np.mean(relative_errors(result.per_output, mc.per_output))
            rows.append((gap, result.correlation_pairs, elapsed, err))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation (iv): correlation level-gap cap, c1908, eps=0.1",
             f"{'gap':>6s} {'pairs':>8s} {'seconds':>8s} {'avg % err':>10s}"]
    for gap, pairs, elapsed, err in rows:
        gap_text = "none" if gap is None else str(gap)
        lines.append(f"{gap_text:>6s} {pairs:8d} {elapsed:8.2f} {err:10.2f}")
    write_result("ablation_level_gap.txt", "\n".join(lines))
    # Larger caps compute more pairs; the accuracy change stays small.
    assert rows[0][1] <= rows[-1][1]
    assert abs(rows[0][3] - rows[-1][3]) < 2.0
