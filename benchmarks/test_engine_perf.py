"""Persistent engine: warm-session queries vs cold one-shot analysis.

The engine's whole point (docs/engine.md) is that the expensive,
eps-independent work — weight vectors, compiled plans — happens once per
circuit session and is amortized over every later request, and that
same-session requests coalesce into single batched kernel calls.  This
module measures both effects on i10 (the largest Table 2 stand-in):

* **cold** — a fresh engine answering its first query, exactly what a
  one-shot ``repro analyze`` invocation pays (weights + plan + kernel);
* **warm solo** — the same engine answering one more query from the hot
  session, kernel time only;
* **warm batch** — a batch of same-session queries submitted together,
  so the scheduler coalesces them into one kernel sweep (eps is a batch
  axis of the compiled plans); cost is reported per query.

Acceptance floor: warm batched repeat queries must be >= 10x faster
than the cold one-shot.  Timings land in ``results/engine_perf.txt``
and, via the conftest hook, in ``results/BENCH_engine.json``
(machine-readable trajectory: ``{circuit, phase, mean_s,
speedup_vs_cold}`` rows).
"""

import time

from repro.engine import AnalysisEngine

from conftest import record_engine, write_result

CIRCUIT = "i10"
MIN_SPEEDUP = 10.0
WARM_EPS = [0.01, 0.03, 0.05, 0.08, 0.13, 0.21, 0.26, 0.34]

# The estimator configuration, pinned explicitly so the cold and warm
# phases measure identical work.
OPTS = {"weights": "sampled", "n_patterns": 1 << 14, "level_gap": 6}


def test_warm_session_beats_cold_one_shot():
    with AnalysisEngine() as engine:
        t0 = time.perf_counter()
        first = engine.analyze(CIRCUIT, 0.05, **OPTS)
        cold_s = time.perf_counter() - t0
        assert first.per_output

        t0 = time.perf_counter()
        engine.analyze(CIRCUIT, 0.02, **OPTS)
        warm_solo_s = time.perf_counter() - t0

        requests = [{"op": "analyze", "circuit": CIRCUIT, "eps": eps,
                     "options": OPTS} for eps in WARM_EPS]
        t0 = time.perf_counter()
        responses = engine.submit_many(requests)
        warm_batch_s = (time.perf_counter() - t0) / len(WARM_EPS)

        assert all(r.ok for r in responses)
        assert all(r.coalesced == len(WARM_EPS) for r in responses)
        stats = engine.stats()
        assert stats["session_misses"] == 1
        assert stats["session_hits"] >= 2

    solo_speedup = cold_s / warm_solo_s
    batch_speedup = cold_s / warm_batch_s

    record_engine(CIRCUIT, "cold_first_query", cold_s)
    record_engine(CIRCUIT, "warm_solo_query", warm_solo_s, solo_speedup)
    record_engine(CIRCUIT, "warm_batched_query", warm_batch_s,
                  batch_speedup)

    lines = [
        "engine warm-session amortization (docs/engine.md)",
        f"circuit: {CIRCUIT}  warm batch: {len(WARM_EPS)} queries",
        "",
        f"{'phase':24s} {'mean_s':>10s} {'speedup':>9s}",
        f"{'cold first query':24s} {cold_s:10.4f} {'':>9s}",
        f"{'warm solo query':24s} {warm_solo_s:10.4f} "
        f"{solo_speedup:8.1f}x",
        f"{'warm batched query':24s} {warm_batch_s:10.4f} "
        f"{batch_speedup:8.1f}x",
        "",
        f"floor: warm batched >= {MIN_SPEEDUP:.0f}x faster than cold",
    ]
    write_result("engine_perf.txt", "\n".join(lines) + "\n")

    assert batch_speedup >= MIN_SPEEDUP, (
        f"warm batched queries only {batch_speedup:.1f}x faster than the "
        f"cold one-shot (floor {MIN_SPEEDUP}x)")
