"""Incremental workspace vs from-scratch re-analysis (docs/incremental.md).

The selective-hardening loop is the incremental subsystem's motivating
workload: harden one gate, re-measure, repeat.  A from-scratch flow pays
the full weight-vector build (the dominant cost at paper-scale pattern
counts) on every iteration; a :class:`~repro.incremental.CircuitWorkspace`
pays it once and then recounts only each TMR island's dirty cone.

This module times a 10-step selective-TMR loop on i10 (the largest
Table 2 stand-in) both ways, checks the per-output deltas agree to
1e-10 at every step (the subsystem's parity guarantee), and enforces the
acceptance floor: the incremental loop must be >= 5x faster than ten
from-scratch analyses.  Timings land in ``results/incremental_perf.txt``
and, via the conftest hook, in ``results/BENCH_incremental.json``
(machine-readable trajectory: ``{circuit, loop, mean_s,
speedup_vs_scratch}`` rows).
"""

import time

from repro.circuit import triplicate_gates
from repro.circuits import get_benchmark
from repro.incremental import CircuitWorkspace, Triplicate
from repro.reliability import SinglePassAnalyzer

from conftest import record_incremental, write_result

CIRCUIT = "i10"
STEPS = 10
MIN_SPEEDUP = 5.0
EPS = 0.05

# Paper-scale pattern count: the weight build dominates a from-scratch
# analysis, which is exactly the cost the workspace amortizes.
N_PATTERNS = 1 << 20
SEED = 0


def _hardening_plan(circuit):
    """Ten distinct gates spread across the netlist, deterministically."""
    gates = circuit.topological_gates()
    stride = len(gates) // STEPS
    return [gates[i * stride] for i in range(STEPS)]


def test_incremental_loop_beats_from_scratch():
    base = get_benchmark(CIRCUIT)
    plan = _hardening_plan(base)

    # Arm 1: from-scratch — every step rebuilds weights and plan.
    scratch_deltas = []
    circuit = base
    t0 = time.perf_counter()
    for gate in plan:
        circuit = triplicate_gates(circuit, [gate], name=circuit.name)
        analyzer = SinglePassAnalyzer(
            circuit, weight_method="sampled", n_patterns=N_PATTERNS,
            seed=SEED, use_correlation=False)
        scratch_deltas.append(dict(analyzer.run(EPS).per_output))
    scratch_s = time.perf_counter() - t0

    # Arm 2: incremental — one workspace, each step is a Triplicate edit
    # whose dirty cone is just the inserted TMR island.  The workspace
    # build is the session's one-time cost (what a pinned engine session
    # keeps warm); the loop itself is what the two arms compare.
    inc_deltas = []
    ws = CircuitWorkspace(base, eps=EPS, weight_method="sampled",
                          n_patterns=N_PATTERNS, seed=SEED,
                          use_correlation=False)
    t0 = time.perf_counter()
    for gate in plan:
        ws.apply(Triplicate((gate,)))
        inc_deltas.append(dict(ws.analyze().per_output))
    incremental_s = time.perf_counter() - t0

    # Parity at every step: both arms analyze the identical mutated
    # circuit with identical sampled weights.
    for step, (a, b) in enumerate(zip(scratch_deltas, inc_deltas)):
        assert a.keys() == b.keys()
        for out in a:
            assert abs(a[out] - b[out]) <= 1e-10, (
                f"step {step}: output {out} diverged: {a[out]} vs {b[out]}")

    speedup = scratch_s / incremental_s
    record_incremental(CIRCUIT, "from_scratch", scratch_s / STEPS)
    record_incremental(CIRCUIT, "incremental", incremental_s / STEPS,
                       speedup)

    lines = [
        "incremental selective-TMR loop (docs/incremental.md)",
        f"circuit: {CIRCUIT}  steps: {STEPS}  "
        f"patterns: {N_PATTERNS}",
        "",
        f"{'loop':24s} {'total_s':>10s} {'per_step_s':>11s} "
        f"{'speedup':>9s}",
        f"{'from scratch':24s} {scratch_s:10.3f} "
        f"{scratch_s / STEPS:11.4f} {'':>9s}",
        f"{'incremental':24s} {incremental_s:10.3f} "
        f"{incremental_s / STEPS:11.4f} {speedup:8.1f}x",
        "",
        f"floor: incremental >= {MIN_SPEEDUP:.0f}x faster over the loop",
    ]
    write_result("incremental_perf.txt", "\n".join(lines) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"incremental loop only {speedup:.1f}x faster than from-scratch "
        f"(floor {MIN_SPEEDUP}x)")
