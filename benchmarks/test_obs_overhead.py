"""Guard: disabled observability must not slow the single-pass hot path.

The instrumentation contract (docs/observability.md) is *zero cost when
disabled*: every span/counter entry point checks one module flag before
doing any work, and hot loops batch their reporting at phase granularity.
This benchmark enforces the contract so instrumentation can never silently
regress the paper's headline O(n) claim: it times the instrumented
single-pass analysis with observability disabled (the shipped default)
against the same analysis with the instrumentation hooks stubbed out to
literal no-ops (reconstructing the pre-instrumentation hot path), and
asserts the difference is within 10%.

A second, tighter guard covers the engine's *always-on* per-request
accounting (the ``telemetry`` envelope block and the ``EngineStats``
rolling window, docs/observability.md): those run on every warm-path
request regardless of the obs flags, so they get their own budget —
under 2% vs the same engine with the accounting stubbed out.

Min-of-N timing is used (robust against scheduler noise); the comparison
is relative, on the same interpreter, same circuit, same weights.
"""

import contextlib
import json
import time

from repro import obs
from repro.circuit import circuit_stats
from repro.circuits import get_benchmark
from repro.engine import AnalysisEngine
from repro.engine.core import AnalysisEngine as _EngineClass
from repro.engine.stats import EngineStats
from repro.reliability import SinglePassAnalyzer
from repro.reliability import single_pass as sp_module

from conftest import LEVEL_GAP, RESULTS_DIR, write_result

#: Allowed slowdown of instrumented-but-disabled vs stripped hot path.
MAX_OVERHEAD = 1.10

#: Allowed slowdown from the always-on per-request telemetry counters
#: (envelope block + rolling stats) on the warm engine path.
MAX_WARM_OVERHEAD = 1.02

_REPEATS = 9


def _best_seconds(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class _StubMetrics:
    """Stand-in for repro.obs.metrics with collection permanently off."""

    @staticmethod
    def is_enabled():
        return False


def test_disabled_obs_overhead_single_pass(monkeypatch):
    assert not obs.is_enabled(), "observability must default to off"
    circuit = get_benchmark("b9")  # mid-size: 210-gate Table 2 stand-in
    analyzer = SinglePassAnalyzer(circuit, weight_method="sampled",
                                  n_patterns=1 << 14,
                                  max_correlation_level_gap=LEVEL_GAP,
                                  seed=0)
    analyzer.run(0.1)  # warm caches (truth tables, allocator)

    # Instrumented, observability disabled — the shipped default.
    instrumented = _best_seconds(lambda: analyzer.run(0.1))

    # Strip the hooks to literal no-ops: this is the pre-instrumentation
    # hot path, reconstructed in-place.
    monkeypatch.setattr(sp_module, "trace_span",
                        lambda *a, **k: contextlib.nullcontext())
    monkeypatch.setattr(sp_module, "obs_metrics", _StubMetrics)
    stripped = _best_seconds(lambda: analyzer.run(0.1))
    monkeypatch.undo()

    overhead = instrumented / stripped if stripped > 0 else 1.0
    write_result(
        "obs_overhead.txt",
        "Instrumentation overhead guard (single-pass, b9, eps=0.1)\n"
        f"instrumented (obs disabled)  {instrumented * 1000:8.3f} ms\n"
        f"stripped no-op hooks         {stripped * 1000:8.3f} ms\n"
        f"overhead factor              {overhead:8.3f}x "
        f"(limit {MAX_OVERHEAD:.2f}x)")
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-mode instrumentation overhead {overhead:.3f}x exceeds "
        f"{MAX_OVERHEAD:.2f}x: a span/counter hook is doing work while "
        f"observability is off")


def test_always_on_telemetry_overhead(monkeypatch):
    """The per-request telemetry counters stay under 2% on the warm path.

    Unlike spans, the envelope block and the rolling stats are populated
    on *every* request (obs flags or not), so they cannot hide behind
    the disabled-mode guard above.  Time a warm coalesced sweep with the
    accounting live vs stubbed to no-ops; each measured unit batches
    several submits so the ~µs-scale accounting is amortized against
    stable kernel time.
    """
    assert not obs.is_enabled(), "observability must default to off"
    request = {"op": "analyze", "circuit": "b9", "eps": [0.1],
               "options": {"weights": "sampled", "n_patterns": 1 << 12,
                           "level_gap": LEVEL_GAP, "seed": 0}}

    def batch(engine, n=10):
        for _ in range(n):
            assert engine.submit(request).ok

    with AnalysisEngine(max_sessions=4) as engine:
        batch(engine)  # warm the session, plans, allocator
        live = _best_seconds(lambda: batch(engine))

        monkeypatch.setattr(
            _EngineClass, "_attach_telemetry",
            lambda self, response, **kw: None)
        monkeypatch.setattr(EngineStats, "record",
                            lambda self, *a, **kw: None)
        batch(engine)  # settle after the patch
        stripped = _best_seconds(lambda: batch(engine))
        monkeypatch.undo()

        # Post-undo sanity: the accounting is live again.
        response = engine.submit(request)
        assert response.telemetry is not None

    overhead = live / stripped if stripped > 0 else 1.0
    write_result(
        "obs_warm_telemetry_overhead.txt",
        "Always-on telemetry overhead guard (warm engine, b9, eps=0.1)\n"
        f"live accounting              {live * 1000:8.3f} ms /10 submits\n"
        f"stubbed accounting           {stripped * 1000:8.3f} ms /10 submits\n"
        f"overhead factor              {overhead:8.3f}x "
        f"(limit {MAX_WARM_OVERHEAD:.2f}x)")
    assert overhead <= MAX_WARM_OVERHEAD, (
        f"always-on telemetry overhead {overhead:.3f}x exceeds "
        f"{MAX_WARM_OVERHEAD:.2f}x on the warm path: the per-request "
        f"accounting is doing more than counter arithmetic")


def test_sample_scrape_and_trace_artifacts():
    """Produce a sample Prometheus scrape and spliced Chrome trace.

    CI uploads both files as workflow artifacts (see
    .github/workflows/ci.yml, benchmarks job) so every commit has an
    inspectable example of the exposition format and the cross-process
    trace.  The assertions keep the samples honest: real quantile
    series, real multi-lane spans.
    """
    opts = {"weights": "sampled", "n_patterns": 1 << 10}
    obs.enable()
    try:
        obs.reset()
        requests = [{"op": "analyze", "circuit": name, "eps": [eps],
                     "options": opts}
                    for name in ("c17", "c432") for eps in (0.01, 0.05)]
        with AnalysisEngine(max_sessions=4) as engine:
            responses = engine.submit_many(requests, jobs=2)
            assert all(r.ok for r in responses)
            exposition = engine.prometheus()
        trace = obs.get_tracer().to_chrome_trace()
    finally:
        obs.disable()
        obs.reset()

    assert 'quantile="0.99"' in exposition
    pids = {event["pid"] for event in trace["traceEvents"]}
    assert len(pids) == 3, "expected the parent plus two worker tracks"

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "OBS_sample_scrape.prom").write_text(exposition)
    (RESULTS_DIR / "OBS_sample_trace.json").write_text(json.dumps(trace))


def test_enabled_obs_actually_collects():
    """Sanity: the same path produces spans + metrics when enabled."""
    circuit = get_benchmark("b9")
    analyzer = SinglePassAnalyzer(circuit, weight_method="sampled",
                                  n_patterns=1 << 12,
                                  max_correlation_level_gap=LEVEL_GAP,
                                  seed=0)
    obs.enable()
    try:
        obs.reset()
        analyzer.run(0.1)
        assert obs.get_tracer().find("single_pass.run")
        assert obs.metrics.get_registry().value(
            "single_pass.gates_processed",
            circuit=circuit.name) == circuit_stats(circuit).num_gates
    finally:
        obs.disable()
        obs.reset()
