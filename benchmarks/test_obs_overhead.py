"""Guard: disabled observability must not slow the single-pass hot path.

The instrumentation contract (docs/observability.md) is *zero cost when
disabled*: every span/counter entry point checks one module flag before
doing any work, and hot loops batch their reporting at phase granularity.
This benchmark enforces the contract so instrumentation can never silently
regress the paper's headline O(n) claim: it times the instrumented
single-pass analysis with observability disabled (the shipped default)
against the same analysis with the instrumentation hooks stubbed out to
literal no-ops (reconstructing the pre-instrumentation hot path), and
asserts the difference is within 10%.

Min-of-N timing is used (robust against scheduler noise); the comparison
is relative, on the same interpreter, same circuit, same weights.
"""

import contextlib
import time

from repro import obs
from repro.circuit import circuit_stats
from repro.circuits import get_benchmark
from repro.reliability import SinglePassAnalyzer
from repro.reliability import single_pass as sp_module

from conftest import LEVEL_GAP, write_result

#: Allowed slowdown of instrumented-but-disabled vs stripped hot path.
MAX_OVERHEAD = 1.10

_REPEATS = 9


def _best_seconds(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class _StubMetrics:
    """Stand-in for repro.obs.metrics with collection permanently off."""

    @staticmethod
    def is_enabled():
        return False


def test_disabled_obs_overhead_single_pass(monkeypatch):
    assert not obs.is_enabled(), "observability must default to off"
    circuit = get_benchmark("b9")  # mid-size: 210-gate Table 2 stand-in
    analyzer = SinglePassAnalyzer(circuit, weight_method="sampled",
                                  n_patterns=1 << 14,
                                  max_correlation_level_gap=LEVEL_GAP,
                                  seed=0)
    analyzer.run(0.1)  # warm caches (truth tables, allocator)

    # Instrumented, observability disabled — the shipped default.
    instrumented = _best_seconds(lambda: analyzer.run(0.1))

    # Strip the hooks to literal no-ops: this is the pre-instrumentation
    # hot path, reconstructed in-place.
    monkeypatch.setattr(sp_module, "trace_span",
                        lambda *a, **k: contextlib.nullcontext())
    monkeypatch.setattr(sp_module, "obs_metrics", _StubMetrics)
    stripped = _best_seconds(lambda: analyzer.run(0.1))
    monkeypatch.undo()

    overhead = instrumented / stripped if stripped > 0 else 1.0
    write_result(
        "obs_overhead.txt",
        "Instrumentation overhead guard (single-pass, b9, eps=0.1)\n"
        f"instrumented (obs disabled)  {instrumented * 1000:8.3f} ms\n"
        f"stripped no-op hooks         {stripped * 1000:8.3f} ms\n"
        f"overhead factor              {overhead:8.3f}x "
        f"(limit {MAX_OVERHEAD:.2f}x)")
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-mode instrumentation overhead {overhead:.3f}x exceeds "
        f"{MAX_OVERHEAD:.2f}x: a span/counter hook is doing work while "
        f"observability is off")


def test_enabled_obs_actually_collects():
    """Sanity: the same path produces spans + metrics when enabled."""
    circuit = get_benchmark("b9")
    analyzer = SinglePassAnalyzer(circuit, weight_method="sampled",
                                  n_patterns=1 << 12,
                                  max_correlation_level_gap=LEVEL_GAP,
                                  seed=0)
    obs.enable()
    try:
        obs.reset()
        analyzer.run(0.1)
        assert obs.get_tracer().find("single_pass.run")
        assert obs.metrics.get_registry().value(
            "single_pass.gates_processed",
            circuit=circuit.name) == circuit_stats(circuit).num_gates
    finally:
        obs.disable()
        obs.reset()
