"""Compiled single-pass kernel: per-point and swept-evaluation timings.

Times the scalar reference pass against the compiled (vectorized,
eps-batched) kernels on the medium/large stand-ins, both per eps point and
over a 32-point sweep — the workload ``repro curve`` runs.  Both analysis
modes are covered: the plain Sec. 4 independence kernel and the Sec. 4.1
correlation-corrected kernel (with the conftest ``LEVEL_GAP`` locality
cap, the configuration the scalar engine uses on these sizes).  Timings
land in ``results/compiled_perf.txt`` (human-readable) and, via the
conftest hook, in ``results/BENCH_singlepass.json`` (machine-readable
trajectory: ``{circuit, variant, mean_s, speedup_vs_scalar}`` rows).

Acceptance floors: the 32-point i10 sweep must beat 32 scalar ``run()``
calls by >= 5x in *both* modes.
"""

import numpy as np
import pytest

from repro.circuits import get_benchmark
from repro.probability.weights import compute_weights
from repro.reliability import SinglePassAnalyzer

from conftest import LEVEL_GAP, record_singlepass, write_result

CIRCUITS = ("b9", "c499", "i10")

N_SWEEP = 32
EPS_SWEEP = [float(e) for e in np.linspace(0.005, 0.32, N_SWEEP)]

_means = {}


@pytest.fixture(scope="module")
def pairs():
    """Per circuit: (scalar analyzer, compiled analyzer), shared weights."""
    built = {}
    for name in CIRCUITS:
        circuit = get_benchmark(name)
        weights = compute_weights(circuit, method="sampled",
                                  n_patterns=1 << 14, seed=0)
        scalar = SinglePassAnalyzer(circuit, weights=weights,
                                    use_correlation=False, compiled="off")
        fast = SinglePassAnalyzer(circuit, weights=weights,
                                  use_correlation=False)
        fast.run(0.1)  # build the plan outside the timed region
        built[name] = (scalar, fast)
    return built


@pytest.fixture(scope="module")
def corr_pairs():
    """Correlated mode: (scalar oracle, compiled correlated) per circuit."""
    built = {}
    for name in CIRCUITS:
        circuit = get_benchmark(name)
        weights = compute_weights(circuit, method="sampled",
                                  n_patterns=1 << 14, seed=0)
        scalar = SinglePassAnalyzer(circuit, weights=weights,
                                    use_correlation=True, compiled="off",
                                    max_correlation_level_gap=LEVEL_GAP)
        fast = SinglePassAnalyzer(circuit, weights=weights,
                                  use_correlation=True,
                                  max_correlation_level_gap=LEVEL_GAP)
        fast.run(0.1)  # compile the correlated plan outside timed regions
        built[name] = (scalar, fast)
    return built


@pytest.mark.parametrize("name", CIRCUITS)
def test_scalar_point(benchmark, pairs, name):
    scalar, _ = pairs[name]
    result = benchmark(scalar.run, 0.1)
    assert all(0 <= v <= 1 for v in result.per_output.values())
    mean = benchmark.stats.stats.mean
    _means[(name, "scalar_point")] = mean
    record_singlepass(name, "scalar_point", mean)


@pytest.mark.parametrize("name", CIRCUITS)
def test_compiled_point(benchmark, pairs, name):
    scalar, fast = pairs[name]
    result = benchmark(fast.run, 0.1)
    ref = scalar.run(0.1)
    for out in ref.per_output:
        assert result.per_output[out] == pytest.approx(
            ref.per_output[out], abs=1e-12)
    mean = benchmark.stats.stats.mean
    _means[(name, "compiled_point")] = mean
    record_singlepass(name, "compiled_point", mean,
                      _means[(name, "scalar_point")] / mean)


@pytest.mark.parametrize("name", CIRCUITS)
def test_scalar_sweep32(benchmark, pairs, name):
    """Baseline the kernel must beat: 32 independent scalar run() calls."""
    scalar, _ = pairs[name]

    def thirty_two_points():
        return [scalar.run(eps) for eps in EPS_SWEEP]

    benchmark.pedantic(thirty_two_points, rounds=2, iterations=1,
                       warmup_rounds=0)
    mean = benchmark.stats.stats.mean
    _means[(name, "scalar_sweep32")] = mean
    record_singlepass(name, "scalar_sweep32", mean)


@pytest.mark.parametrize("name", CIRCUITS)
def test_compiled_sweep32(benchmark, pairs, name):
    _, fast = pairs[name]
    sweep = benchmark(fast.sweep, EPS_SWEEP)
    assert sweep.n_points == N_SWEEP
    mean = benchmark.stats.stats.mean
    speedup = _means[(name, "scalar_sweep32")] / mean
    _means[(name, "compiled_sweep32")] = mean
    _means[(name, "sweep_speedup")] = speedup
    record_singlepass(name, "compiled_sweep32", mean, speedup)
    if name == "i10":
        # Acceptance floor: the whole curve in one pass, >= 5x the
        # point-at-a-time scalar loop.
        assert speedup >= 5.0


@pytest.mark.parametrize("name", CIRCUITS)
def test_corr_scalar_sweep32(benchmark, corr_pairs, name):
    """Correlated baseline: 32 independent scalar correlated run() calls."""
    scalar, _ = corr_pairs[name]

    def thirty_two_points():
        return [scalar.run(eps) for eps in EPS_SWEEP]

    benchmark.pedantic(thirty_two_points, rounds=1, iterations=1,
                       warmup_rounds=0)
    mean = benchmark.stats.stats.mean
    _means[(name, "corr_scalar_sweep32")] = mean
    record_singlepass(name, "corr_scalar_sweep32", mean)


@pytest.mark.parametrize("name", CIRCUITS)
def test_corr_compiled_sweep32(benchmark, corr_pairs, name):
    """The tentpole workload: a whole corrected curve in one compiled pass."""
    scalar, fast = corr_pairs[name]
    sweep = benchmark(fast.sweep, EPS_SWEEP)
    assert sweep.n_points == N_SWEEP
    assert sweep.used_correlation is True
    # Guard: the timed kernel really computed the Sec. 4.1 correction.
    ref = scalar.run(EPS_SWEEP[-1])
    for o, out in enumerate(sweep.outputs):
        assert sweep.per_output[o, -1] == pytest.approx(
            ref.per_output[out], abs=1e-10)
    mean = benchmark.stats.stats.mean
    speedup = _means[(name, "corr_scalar_sweep32")] / mean
    _means[(name, "corr_compiled_sweep32")] = mean
    _means[(name, "corr_sweep_speedup")] = speedup
    record_singlepass(name, "corr_compiled_sweep32", mean, speedup)
    if name == "i10":
        # Acceptance floor: correlated 32-point i10 sweep >= 5x scalar.
        assert speedup >= 5.0


def test_forced_scalar_oracle_still_works(corr_pairs):
    """The parity oracle path (compiled="off") stays functional."""
    scalar, fast = corr_pairs["b9"]
    assert not scalar.uses_compiled
    ref = scalar.run(0.1)
    res = fast.run(0.1)
    assert ref.correlation_pairs > 0
    assert ref.correlation_engine is not None
    for out in ref.per_output:
        assert res.per_output[out] == pytest.approx(ref.per_output[out],
                                                    abs=1e-10)


def test_compiled_perf_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if ("i10", "corr_compiled_sweep32") not in _means:
        pytest.skip("timing benchmarks did not all run")
    lines = [f"Compiled single-pass kernels vs scalar reference "
             f"(mean seconds; sweep = {N_SWEEP} eps points; "
             f"corr = Sec. 4.1 corrected, level gap {LEVEL_GAP})",
             f"{'circuit':8s} {'scalar/pt':>10s} {'compiled/pt':>12s} "
             f"{'scalar swp':>11s} {'compiled swp':>13s} {'speedup':>8s} "
             f"{'corr swp':>9s} {'corr compiled':>14s} {'speedup':>8s}"]
    for name in CIRCUITS:
        lines.append(
            f"{name:8s} {_means[(name, 'scalar_point')]:10.5f} "
            f"{_means[(name, 'compiled_point')]:12.5f} "
            f"{_means[(name, 'scalar_sweep32')]:11.4f} "
            f"{_means[(name, 'compiled_sweep32')]:13.4f} "
            f"{_means[(name, 'sweep_speedup')]:7.1f}x "
            f"{_means[(name, 'corr_scalar_sweep32')]:9.4f} "
            f"{_means[(name, 'corr_compiled_sweep32')]:14.4f} "
            f"{_means[(name, 'corr_sweep_speedup')]:7.1f}x")
    write_result("compiled_perf.txt", "\n".join(lines))
