"""Baseline comparison: the accuracy claims of the paper's Sec. 2.

Compares, against Monte Carlo ground truth at one eps:

* the single-pass analysis (this paper);
* the observability closed form (this paper, Sec. 3);
* the naive compositional scalar-error rules (prior analytical work the
  paper says "suffer significant penalties in accuracy" on multi-level
  logic);

and reproduces von Neumann's NAND-multiplexing noise threshold from the
executive-organ recurrence (the paper's reference [3]).
"""

import math

import numpy as np
import pytest

from repro.circuits import get_benchmark
from repro.reliability import (
    ObservabilityModel,
    SinglePassAnalyzer,
    compositional_delta,
    von_neumann_threshold,
)
from repro.sim import monte_carlo_reliability

from conftest import LEVEL_GAP, MC_PATTERNS, relative_errors, write_result

BENCHES = ("x2", "cu", "b9")
EPS = 0.05


def _accuracy_table():
    rows = []
    for name in BENCHES:
        circuit = get_benchmark(name)
        mc = monte_carlo_reliability(circuit, EPS, n_patterns=MC_PATTERNS,
                                     seed=4)
        sp = SinglePassAnalyzer(
            circuit, max_correlation_level_gap=LEVEL_GAP,
            weight_method="sampled", n_patterns=1 << 15).run(EPS)
        comp = compositional_delta(circuit, EPS)
        closed = {}
        for out in circuit.outputs:
            model = ObservabilityModel(circuit, output=out,
                                       method="sampled",
                                       n_patterns=1 << 13)
            closed[out] = model.delta(EPS)
        rows.append((
            name,
            float(np.mean(relative_errors(sp.per_output, mc.per_output))),
            float(np.mean(relative_errors(closed, mc.per_output))),
            float(np.mean(relative_errors(comp, mc.per_output))),
        ))
    return rows


def test_sec2_baseline_accuracy(benchmark):
    rows = benchmark.pedantic(_accuracy_table, rounds=1, iterations=1)
    lines = [f"Sec. 2 baseline comparison — avg % error vs MC at eps={EPS}",
             f"{'bench':8s} {'single-pass':>12s} {'closed-form':>12s} "
             f"{'compositional':>14s}"]
    for name, sp, cf, comp in rows:
        lines.append(f"{name:8s} {sp:12.2f} {cf:12.2f} {comp:14.2f}")
    write_result("baselines.txt", "\n".join(lines))
    # The paper's ordering: single-pass best; compositional rules suffer a
    # significant penalty on every multi-level benchmark.
    for name, sp, cf, comp in rows:
        assert comp > 3 * sp, (name, sp, comp)


def test_von_neumann_threshold(benchmark):
    numeric = benchmark.pedantic(von_neumann_threshold,
                                 kwargs={"tolerance": 1e-7},
                                 rounds=1, iterations=1)
    analytic = (3.0 - math.sqrt(7.0)) / 4.0
    write_result(
        "von_neumann.txt",
        "von Neumann 2-input NAND multiplexing threshold\n"
        f"numeric (from the executive-organ recurrence): {numeric:.6f}\n"
        f"analytic (3 - sqrt(7)) / 4:                    {analytic:.6f}\n")
    assert numeric == pytest.approx(analytic, abs=2e-3)
