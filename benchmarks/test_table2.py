"""Regenerates Table 2: single-pass accuracy vs Monte Carlo + runtimes.

Paper columns: benchmark, size, average % error over all outputs at
eps in {0.05, 0.1, 0.15, 0.2, 0.25, 0.3}, and the cumulative runtime of a
50-point eps sweep for Monte Carlo vs single-pass analysis.

Paper-shape expectations checked here:
* errors are largest at small eps and shrink as eps grows (every row of
  the paper shows this monotone trend);
* the reconvergence-heavy c499/c1355 pair shows the largest errors;
* single-pass is orders of magnitude faster than Monte Carlo at the
  paper's 6.4M-pattern budget.
"""

import time

import numpy as np
import pytest

from repro.circuits import TABLE2_BENCHMARKS, get_benchmark
from repro.reliability import SinglePassAnalyzer
from repro.sim import monte_carlo_reliability

from conftest import LEVEL_GAP, MC_PATTERNS, relative_errors, write_result

EPS_COLUMNS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3]

#: Paper's Table 2 average-% errors, for side-by-side reporting.
PAPER_ERRORS = {
    "x2": [1.3, 0.92, 0.52, 0.28, 0.15, 0.08],
    "cu": [1.58, 0.83, 0.37, 0.14, 0.09, 0.06],
    "b9": [0.3, 0.22, 0.12, 0.07, 0.06, 0.03],
    "c499": [12.16, 9.63, 6.97, 4.61, 2.75, 1.43],
    "c1355": [8.91, 7.48, 5.58, 3.79, 2.32, 1.24],
    "c1908": [8.67, 6.06, 4.42, 3.0, 1.84, 1.0],
    "c2670": [3.04, 1.99, 1.35, 0.88, 0.54, 0.31],
    "frg2": [2.4, 1.53, 0.94, 0.54, 0.3, 0.15],
    "c3540": [6.2, 2.67, 1.18, 0.53, 0.23, 0.11],
    "i10": [2.43, 1.58, 1.01, 0.62, 0.37, 0.21],
}

_rows = {}


def _measure_circuit(name: str):
    circuit = get_benchmark(name)
    analyzer = SinglePassAnalyzer(circuit, weight_method="sampled",
                                  n_patterns=1 << 15, seed=0,
                                  max_correlation_level_gap=LEVEL_GAP)
    errors = []
    t_sp = 0.0
    t_mc = 0.0
    for i, eps in enumerate(EPS_COLUMNS):
        t0 = time.perf_counter()
        sp = analyzer.run(eps)
        t_sp += time.perf_counter() - t0
        t0 = time.perf_counter()
        mc = monte_carlo_reliability(circuit, eps, n_patterns=MC_PATTERNS,
                                     seed=100 + i)
        t_mc += time.perf_counter() - t0
        errors.append(float(np.mean(
            relative_errors(sp.per_output, mc.per_output))))
    # Extrapolate the paper's 50-run sweep from the measured 6 runs, and
    # the paper's 6.4M-pattern MC budget from our sampled budget.
    sweep_sp = t_sp / len(EPS_COLUMNS) * 50
    sweep_mc = t_mc / len(EPS_COLUMNS) * 50 * (6_400_000 / MC_PATTERNS)
    return {
        "size": circuit.num_gates,
        "errors": errors,
        "sweep_sp_s": sweep_sp,
        "sweep_mc_s": sweep_mc,
    }


@pytest.mark.parametrize("name", TABLE2_BENCHMARKS)
def test_table2_row(name, benchmark):
    row = benchmark.pedantic(_measure_circuit, args=(name,),
                             rounds=1, iterations=1)
    _rows[name] = row
    # Paper-shape assertion: error shrinks (weakly) from small to large eps.
    assert row["errors"][0] >= row["errors"][-1] - 0.5, row["errors"]
    # Single-pass beats paper-budget Monte Carlo by a wide margin.
    assert row["sweep_sp_s"] < row["sweep_mc_s"]


def test_table2_report(benchmark):
    """Assemble the table after all rows ran (and check global shape)."""
    if len(_rows) < len(TABLE2_BENCHMARKS):
        pytest.skip("row benchmarks did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Table 2 reproduction — average % error over all outputs "
             "(ours vs paper) and runtimes",
             f"{'bench':8s} {'size':>5s} "
             + " ".join(f"e={e:<4g}" for e in EPS_COLUMNS)
             + "  | 50-run MC (est) | 50-run single-pass"]
    for name in TABLE2_BENCHMARKS:
        row = _rows[name]
        ours = " ".join(f"{v:6.2f}" for v in row["errors"])
        paper = " ".join(f"{v:6.2f}" for v in PAPER_ERRORS[name])
        lines.append(f"{name:8s} {row['size']:5d} {ours}  "
                     f"| {row['sweep_mc_s']:13.1f}s "
                     f"| {row['sweep_sp_s']:10.2f}s")
        lines.append(f"{'(paper)':8s} {'':5s} {paper}")
    write_result("table2.txt", "\n".join(lines))

    # Global shape: the XOR/reconvergence-heavy pair dominates the error.
    worst = max(_rows, key=lambda n: _rows[n]["errors"][0])
    assert worst in ("c499", "c1355"), worst
