"""Performance benchmarks: the paper's Sec. 5 speed claims.

Timed with pytest-benchmark (multiple rounds, real statistics):

* single-pass run cost per eps point on small/medium/large stand-ins;
* closed-form re-evaluation cost (the 'flexibility' argument of Sec. 3:
  changing eps only re-evaluates Eqn. (3));
* Monte Carlo cost per eps point (the baseline the paper beats);
* the PTM scalability wall: exact but exponential in level width.
"""

import pytest

from repro.circuits import c17, get_benchmark
from repro.reliability import (
    ObservabilityModel,
    PtmWidthError,
    SinglePassAnalyzer,
    ptm_reliability,
)
from repro.sim import monte_carlo_reliability

from conftest import LEVEL_GAP, write_result

_timings = {}


@pytest.fixture(scope="module")
def analyzers():
    built = {}
    for name in ("b9", "c499", "i10"):
        circuit = get_benchmark(name)
        built[name] = SinglePassAnalyzer(
            circuit, weight_method="sampled", n_patterns=1 << 14,
            max_correlation_level_gap=LEVEL_GAP, seed=0)
    return built


@pytest.mark.parametrize("name", ["b9", "c499", "i10"])
def test_single_pass_run(benchmark, analyzers, name):
    analyzer = analyzers[name]
    result = benchmark(analyzer.run, 0.1)
    _timings[f"single_pass_{name}"] = benchmark.stats.stats.mean
    assert all(0 <= v <= 1 for v in result.per_output.values())


def test_single_pass_without_correlation_i10(benchmark, analyzers):
    circuit = analyzers["i10"].circuit
    fast = SinglePassAnalyzer(circuit, weights=analyzers["i10"].weights,
                              use_correlation=False)
    benchmark(fast.run, 0.1)
    _timings["single_pass_i10_nocorr"] = benchmark.stats.stats.mean


def test_closed_form_reevaluation(benchmark):
    circuit = get_benchmark("b9")
    model = ObservabilityModel(circuit, output=circuit.outputs[0],
                               method="sampled", n_patterns=1 << 13)
    benchmark(model.delta, 0.07)
    _timings["closed_form_b9"] = benchmark.stats.stats.mean
    # Re-evaluation must be microsecond-scale: the Sec. 3 flexibility claim.
    assert benchmark.stats.stats.mean < 1e-3


def test_monte_carlo_point_b9(benchmark):
    circuit = get_benchmark("b9")
    benchmark.pedantic(monte_carlo_reliability, args=(circuit, 0.1),
                       kwargs={"n_patterns": 1 << 14, "seed": 0},
                       rounds=3, iterations=1)
    _timings["mc_b9_16k"] = benchmark.stats.stats.mean


def test_ptm_exact_but_walled(benchmark):
    """PTM is exact on tiny circuits and rejects realistic widths."""
    small = c17()
    result = benchmark(ptm_reliability, small, 0.1)
    assert 0 < result.delta("22") < 0.5
    _timings["ptm_c17"] = benchmark.stats.stats.mean
    with pytest.raises(PtmWidthError):
        ptm_reliability(get_benchmark("b9"), 0.1)


def test_perf_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "single_pass_i10" not in _timings:
        pytest.skip("timing benchmarks did not all run")
    lines = ["Performance summary (mean seconds per call)"]
    for key, mean in sorted(_timings.items()):
        lines.append(f"{key:28s} {mean * 1000:10.3f} ms")
    mc = _timings.get("mc_b9_16k")
    sp = _timings.get("single_pass_b9")
    if mc and sp:
        paper_budget = mc * (6_400_000 / (1 << 14))
        lines.append(
            f"\nb9: paper-budget MC (6.4M patterns) ~ {paper_budget:.1f}s "
            f"per eps point vs single-pass {sp * 1000:.1f} ms "
            f"=> ~{paper_budget / sp:.0f}x speedup")
    write_result("perf.txt", "\n".join(lines))
