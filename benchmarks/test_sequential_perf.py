"""Compiled k-frame sweep vs the scalar frame oracle (docs/sequential.md).

A sequential analysis at k time frames is a single-pass run of the
unrolled netlist — k copies of the combinational core wired next-state
to state input.  The compiled independence kernel evaluates every eps
point of the sweep in one vectorized pass over that unrolled structure;
the scalar reference path walks it node by node, point by point, and is
the parity oracle the kernel is checked against.

This module unrolls the largest sequential fixture deep enough to make
the frame axis the dominant cost, sweeps a batch of eps points through
both paths, checks per-output parity to 1e-10 at every point, and
enforces the acceptance floor: the compiled sweep must be >= 5x faster
than the scalar loop.  Timings land in ``results/sequential_perf.txt``
and, via the conftest hook, in ``results/BENCH_sequential.json``
(machine-readable trajectory: ``{circuit, frames, variant, points,
mean_s, speedup_vs_scalar}`` rows, rolled into ``BENCH_summary.json``).
"""

import time

from repro.circuit import unroll
from repro.circuits import get_sequential_benchmark
from repro.reliability import SinglePassAnalyzer

from conftest import FULL, record_sequential, write_result

CIRCUIT = "seq_lfsr4"
FRAMES = 64 if FULL else 32
POINTS = 32 if FULL else 16
MIN_SPEEDUP = 5.0
N_PATTERNS = 1 << 12
SEED = 0


def test_compiled_frame_sweep_beats_scalar():
    seq = get_sequential_benchmark(CIRCUIT)
    unrolled = unroll(seq, FRAMES)
    eps_values = [0.001 + 0.01 * i for i in range(POINTS)]
    kwargs = dict(weight_method="sampled", n_patterns=N_PATTERNS,
                  seed=SEED, use_correlation=False, frames=FRAMES)

    scalar = SinglePassAnalyzer(unrolled, compiled="off", **kwargs)
    compiled = SinglePassAnalyzer(unrolled, compiled="auto", **kwargs)
    assert not scalar.uses_compiled and compiled.uses_compiled

    # Warm both arms outside the timed region: weights are shared work,
    # and the compiled arm's one-time lowering is a session cost.
    scalar.run(eps_values[0])
    compiled.sweep(eps_values[:1])

    t0 = time.perf_counter()
    scalar_results = [scalar.run(eps) for eps in eps_values]
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = compiled.sweep(eps_values)
    compiled_s = time.perf_counter() - t0

    # Parity at every point: the scalar pass is the oracle.
    for j, want in enumerate(scalar_results):
        got = sweep.point(j).per_output
        assert got.keys() == want.per_output.keys()
        for out in got:
            assert abs(got[out] - want.per_output[out]) <= 1e-10, (
                f"eps point {j}: output {out} diverged: "
                f"{got[out]} vs {want.per_output[out]}")

    speedup = scalar_s / compiled_s
    record_sequential(CIRCUIT, FRAMES, "scalar", POINTS,
                      scalar_s / POINTS)
    record_sequential(CIRCUIT, FRAMES, "compiled", POINTS,
                      compiled_s / POINTS, speedup)

    lines = [
        "sequential k-frame sweep: compiled vs scalar "
        "(docs/sequential.md)",
        f"circuit: {CIRCUIT}  frames: {FRAMES}  "
        f"unrolled gates: {unrolled.num_gates}  eps points: {POINTS}",
        "",
        f"{'variant':24s} {'total_s':>10s} {'per_point_s':>12s} "
        f"{'speedup':>9s}",
        f"{'scalar (oracle)':24s} {scalar_s:10.3f} "
        f"{scalar_s / POINTS:12.5f} {'':>9s}",
        f"{'compiled sweep':24s} {compiled_s:10.3f} "
        f"{compiled_s / POINTS:12.5f} {speedup:8.1f}x",
        "",
        f"floor: compiled >= {MIN_SPEEDUP:.0f}x faster over the sweep",
    ]
    write_result("sequential_perf.txt", "\n".join(lines) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"compiled k-frame sweep only {speedup:.1f}x faster than scalar "
        f"(floor {MIN_SPEEDUP}x)")
