"""Regenerates Fig. 6: delta(eps) curves for two outputs of i10.

The paper picks two i10 outputs with large fanin cones (662 and 1034
gates) and shows the Monte Carlo and single-pass curves are visually
indistinguishable despite their diverse shapes.
"""

import numpy as np
import pytest

from repro.circuit import cone_size
from repro.circuits import get_benchmark
from repro.reliability import SinglePassAnalyzer
from repro.sim import monte_carlo_reliability

from conftest import FULL, LEVEL_GAP, MC_PATTERNS, write_result

N_POINTS = 26 if FULL else 11


def _run():
    i10 = get_benchmark("i10")
    # The two outputs with the largest cones, as in the paper.
    sizes = sorted(((cone_size(i10, o), o) for o in i10.outputs),
                   reverse=True)
    picks = [sizes[0][1], sizes[1][1]]
    curves = {}
    for out in picks:
        cone = i10.cone(out)
        analyzer = SinglePassAnalyzer(
            cone, weight_method="sampled", n_patterns=1 << 15,
            max_correlation_level_gap=LEVEL_GAP, seed=0)
        rows = []
        for i in range(N_POINTS):
            eps = 0.5 * i / (N_POINTS - 1)
            sp = analyzer.run(eps).per_output[out]
            mc = monte_carlo_reliability(
                cone, eps, n_patterns=MC_PATTERNS,
                seed=700 + i).per_output[out]
            rows.append((eps, sp, mc))
        curves[out] = (cone.num_gates, rows)
    return curves


def test_fig6_i10_output_curves(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["Fig. 6 reproduction — delta(eps) for the two largest-cone "
             "outputs of the i10 stand-in (single-pass vs MC)"]
    for out, (gates, rows) in curves.items():
        lines.append(f"\noutput {out} (cone: {gates} gates)")
        lines.append(f"{'eps':>6s} {'single-pass':>12s} {'monte carlo':>12s}")
        for eps, sp, mc in rows:
            lines.append(f"{eps:6.3f} {sp:12.5f} {mc:12.5f}")
        gap = max(abs(sp - mc) for _, sp, mc in rows)
        lines.append(f"max |gap| = {gap:.4f}")
    write_result("fig6.txt", "\n".join(lines))

    # Paper shape: the curves are essentially indistinguishable.
    for out, (gates, rows) in curves.items():
        gap = max(abs(sp - mc) for _, sp, mc in rows)
        assert gap < 0.03, (out, gap)
        # Cones are large, like the paper's 662/1034-gate cones.
        assert gates > 200
