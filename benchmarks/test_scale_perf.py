"""Large-netlist substrate: lazy per-cone weights vs full weight builds.

The scaling tier's claim (docs/scaling.md) is that an
``outputs=``-restricted query on a large netlist pays for its union
output cone only, not the whole circuit.  This module measures that on
the deterministic ``rand50k`` preset (~50k gates, with the ``probe_mid``
output wired to a <= 20-input cone):

* **full** — one full-circuit sampled weight build, what an
  unrestricted analysis pays before its first kernel call;
* **lazy_cone** — ``LazyWeightData.restrict(["probe_mid"])``, the exact
  work an ``outputs=["probe_mid"]`` analysis performs for its weights;
* **sat_e2e** — end-to-end ``repro.analyze(..., outputs=["probe_mid"],
  weights="sat")``, the SAT-tier restricted path with a wall-clock cap.

Acceptance floor: the lazy cone build must be >= 5x faster than the
full build.  Timings land in ``results/scale_perf.txt`` and, via the
conftest hook, in ``results/BENCH_scale.json`` (schema: ``{circuit,
variant, gates, cone_gates, mean_s, speedup_vs_full}`` rows).
"""

import time

import pytest

import repro
from repro.circuits import rand50k
from repro.scale import LazyWeightData

from conftest import FULL, record_scale, write_result

MIN_SPEEDUP = 5.0
SAT_E2E_CAP_S = 120.0
N_PATTERNS = 1 << (14 if FULL else 12)
PROBE = "probe_mid"


@pytest.fixture(scope="module")
def netlist():
    return rand50k()


@pytest.mark.slow
def test_lazy_cone_beats_full_weight_build(netlist):
    cone = netlist.subcircuit([PROBE])

    t0 = time.perf_counter()
    full = repro.probability.compute_weights(
        netlist, method="sampled", n_patterns=N_PATTERNS)
    full_s = time.perf_counter() - t0
    assert full.weights

    lazy = LazyWeightData(netlist, method="sampled", n_patterns=N_PATTERNS)
    t0 = time.perf_counter()
    snap = lazy.restrict([PROBE])
    cone_s = time.perf_counter() - t0
    assert lazy.cones_materialized == 1
    assert lazy.materialized_gates == len(cone.gates)

    # Bit-identity spot check against the full build (the contract the
    # tier-1 suite verifies exhaustively on small circuits).
    for gate in cone.topological_gates():
        assert (snap.weights[gate] == full.weights[gate]).all()

    speedup = full_s / cone_s
    record_scale(netlist.name, "full", len(netlist.gates),
                 len(netlist.gates), full_s)
    record_scale(netlist.name, "lazy_cone", len(netlist.gates),
                 len(cone.gates), cone_s, speedup_vs_full=speedup)
    write_result("scale_perf.txt", "\n".join([
        f"circuit: {netlist.name} ({len(netlist.gates)} gates; "
        f"cone of {PROBE}: {len(cone.gates)} gates)",
        f"full sampled weight build : {full_s * 1000:9.1f} ms",
        f"lazy cone restrict        : {cone_s * 1000:9.1f} ms",
        f"speedup                   : {speedup:9.1f}x "
        f"(floor {MIN_SPEEDUP}x)",
    ]) + "\n")
    assert speedup >= MIN_SPEEDUP, (
        f"lazy cone only {speedup:.1f}x faster than the full build "
        f"(floor {MIN_SPEEDUP}x)")


@pytest.mark.slow
def test_sat_restricted_analysis_end_to_end(netlist):
    cone = netlist.subcircuit([PROBE])
    t0 = time.perf_counter()
    result = repro.analyze(netlist, 0.05, outputs=[PROBE], weights="sat")
    sat_s = time.perf_counter() - t0
    assert list(result.per_output) == [PROBE]
    assert 0.0 <= result.delta(PROBE) <= 1.0
    record_scale(netlist.name, "sat_cone", len(netlist.gates),
                 len(cone.gates), sat_s)
    assert sat_s <= SAT_E2E_CAP_S, (
        f"sat-tier restricted analysis took {sat_s:.1f}s "
        f"(cap {SAT_E2E_CAP_S}s)")
